package experiments

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestRunAdaptiveStructure(t *testing.T) {
	o := tiny()
	o.Intervals = 1
	res, err := RunAdaptive(context.Background(), o, []int{4}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	nH := len(AdaptiveHeuristics())
	if len(res.MeanIPC) != 1 || len(res.MeanIPC[0]) != 2 || len(res.MeanIPC[0][0]) != nH {
		t.Fatalf("grid shape %dx%dx%d, want 1x2x%d",
			len(res.MeanIPC), len(res.MeanIPC[0]), len(res.MeanIPC[0][0]), nH)
	}
	for ti := range res.MeanIPC {
		for ci := range res.MeanIPC[ti] {
			for hi, h := range res.Heuristics {
				if res.MeanIPC[ti][ci][hi] <= 0 {
					t.Errorf("t=%d c=%d %v: non-positive mean IPC", ti, ci, h)
				}
			}
		}
	}
	var rendered []string
	for _, tb := range res.Tables() {
		rendered = append(rendered, tb.String())
	}
	all := strings.Join(rendered, "\n")
	for _, want := range []string{"bandit", "ucb", "learned", "vs best static", "best static"} {
		if !strings.Contains(all, want) {
			t.Errorf("tables missing %q", want)
		}
	}
}

// Satellite: the adaptive study is deterministic across worker counts —
// per-run selector state is never shared, so sharding the job list over
// 1 or 4 workers produces byte-identical experiment output.
func TestRunAdaptiveWorkerCountDeterminism(t *testing.T) {
	run := func(workers int) string {
		o := tiny()
		o.Intervals = 1
		o.Mixes = []string{"int-memory"}
		o.Workers = workers
		res, err := RunAdaptive(context.Background(), o, []int{4}, []int{1})
		if err != nil {
			t.Fatal(err)
		}
		// Opts echoes the input (including Workers); only the measured
		// data must match.
		res.Opts = Options{}
		raw, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	if a, b := run(1), run(4); a != b {
		t.Fatalf("adaptive results diverged across worker counts:\n%s\n---\n%s", a, b)
	}
}
