package experiments

import (
	"context"

	"repro/internal/policy"
	"repro/internal/stats"
)

// Table1Result holds the fixed-policy shootout: every Table 1 policy run
// over every mix.
type Table1Result struct {
	Opts     Options
	Policies []policy.Policy
	// MeanIPC[p] is the cross-mix mean IPC of policy p.
	MeanIPC map[policy.Policy]float64
	// PerMixIPC[p][mix] is the per-mix mean.
	PerMixIPC map[policy.Policy]map[string]float64
}

// RunTable1 evaluates all ten fetch policies of Table 1 as fixed
// policies over the mixes.
func RunTable1(ctx context.Context, o Options) (*Table1Result, error) {
	pols := policy.All()
	mixes := o.mixes()
	var jobs []stats.Job
	for _, p := range pols {
		for _, mix := range mixes {
			for it := 0; it < o.Intervals; it++ {
				jobs = append(jobs, stats.Job{
					Name:   jobName("fixed", mix, p.String(), it),
					Config: o.FixedConfig(mix, p, it),
				})
			}
		}
	}
	results, err := o.runAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	res := &Table1Result{
		Opts:      o,
		Policies:  pols,
		MeanIPC:   make(map[policy.Policy]float64, len(pols)),
		PerMixIPC: make(map[policy.Policy]map[string]float64, len(pols)),
	}
	per := len(mixes) * o.Intervals
	for pi, p := range pols {
		block := results[pi*per : (pi+1)*per]
		perMix, mean := meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
			return block[mi*o.Intervals+it].AggregateIPC
		})
		res.PerMixIPC[p] = perMix
		res.MeanIPC[p] = mean
	}
	return res, nil
}

// RunTable1Policy evaluates a single fixed policy over the options'
// mixes and returns its cross-mix mean IPC (one Table 1 row).
func RunTable1Policy(ctx context.Context, o Options, p policy.Policy) (float64, error) {
	mixes := o.mixes()
	var jobs []stats.Job
	for _, mix := range mixes {
		for it := 0; it < o.Intervals; it++ {
			jobs = append(jobs, stats.Job{
				Name:   jobName("fixed", mix, p.String(), it),
				Config: o.FixedConfig(mix, p, it),
			})
		}
	}
	results, err := o.runAll(ctx, jobs)
	if err != nil {
		return 0, err
	}
	_, mean := meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
		return results[mi*o.Intervals+it].AggregateIPC
	})
	return mean, nil
}

// Table renders the policy catalogue with measured mean IPC, Table 1
// plus the companion fixed-policy comparison.
func (t *Table1Result) Table() *stats.Table {
	tb := &stats.Table{
		Title:  "Table 1 — fetch policies tested, with measured fixed-policy mean IPC over all mixes",
		Header: []string{"Fetch policy", "Description", "mean IPC"},
	}
	for _, p := range t.Policies {
		tb.AddRow(p.String(), p.Description(), stats.F(t.MeanIPC[p]))
	}
	return tb
}

// PerMixTable renders the full policy x mix IPC matrix.
func (t *Table1Result) PerMixTable() *stats.Table {
	mixes := t.Opts.mixes()
	hdr := append([]string{"mix"}, func() []string {
		names := make([]string, len(t.Policies))
		for i, p := range t.Policies {
			names[i] = p.String()
		}
		return names
	}()...)
	tb := &stats.Table{Title: "Fixed-policy IPC by mix", Header: hdr}
	for _, mix := range mixes {
		row := []string{mix}
		for _, p := range t.Policies {
			row = append(row, stats.F(t.PerMixIPC[p][mix]))
		}
		tb.AddRow(row...)
	}
	return tb
}
