package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/detector"
	"repro/internal/policy"
	"repro/internal/trace"
)

// tiny returns options small enough for unit tests: two mixes, few
// quanta, one interval.
func tiny() Options {
	o := DefaultOptions()
	o.Mixes = []string{"int-compute", "mixed-lowipc"}
	o.Quanta = 4
	o.Intervals = 2
	return o
}

func TestSweepStructure(t *testing.T) {
	o := tiny()
	thresholds := []float64{1, 3}
	heuristics := []detector.Heuristic{detector.Type1, detector.Type3}
	s, err := RunSweep(context.Background(), o, thresholds, heuristics)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cells) != 2 || len(s.Cells[0]) != 2 {
		t.Fatalf("grid shape %dx%d", len(s.Cells), len(s.Cells[0]))
	}
	if s.BaselineIPC <= 0 {
		t.Fatal("baseline IPC missing")
	}
	for ti := range thresholds {
		for hi := range heuristics {
			c := s.Cells[ti][hi]
			if c.IPC <= 0 {
				t.Fatalf("cell (%d,%d) has no IPC", ti, hi)
			}
			if len(c.PerMixIPC) != 2 {
				t.Fatalf("cell (%d,%d) per-mix map has %d entries", ti, hi, len(c.PerMixIPC))
			}
			if c.BenignP < 0 || c.BenignP > 1 {
				t.Fatalf("benign probability %v out of range", c.BenignP)
			}
		}
	}
	// Figure renderers produce tables with the right geometry.
	for _, tb := range []string{
		s.Figure7Switches().String(),
		s.Figure7Benign().String(),
		s.Figure8IPC().String(),
		s.Figure8Improvement().String(),
	} {
		if !strings.Contains(tb, "Type 1") || !strings.Contains(tb, "Type 3") {
			t.Fatalf("figure table missing heuristic columns:\n%s", tb)
		}
	}
	if !strings.Contains(s.Headline(), "best configuration") {
		t.Fatal("headline malformed")
	}
}

func TestSweepMoreSwitchingAtHigherThreshold(t *testing.T) {
	// The Figure 7a property: a higher IPC threshold declares more
	// quanta low-throughput, so switching cannot decrease.
	o := tiny()
	o.Quanta = 8
	s, err := RunSweep(context.Background(), o, []float64{0.5, 8}, []detector.Heuristic{detector.Type1})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := s.Cells[0][0], s.Cells[1][0]
	if hi.Switches < lo.Switches {
		t.Fatalf("switches fell from %v to %v as m rose", lo.Switches, hi.Switches)
	}
	if hi.LowQuanta < lo.LowQuanta {
		t.Fatalf("low quanta fell from %v to %v as m rose", lo.LowQuanta, hi.LowQuanta)
	}
}

func TestSimilaritySplit(t *testing.T) {
	o := tiny()
	s, err := RunSweep(context.Background(), o, []float64{2}, []detector.Heuristic{detector.Type3})
	if err != nil {
		t.Fatal(err)
	}
	homo := map[string]bool{"int-compute": true}
	hg, dg, err := s.Similarity(2, detector.Type3, homo)
	if err != nil {
		t.Fatal(err)
	}
	_ = hg
	_ = dg
	if _, _, err := s.Similarity(9, detector.Type3, homo); err == nil {
		t.Fatal("missing cell accepted")
	}
}

func TestTable1(t *testing.T) {
	o := tiny()
	res, err := RunTable1(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 10 {
		t.Fatalf("%d policies", len(res.Policies))
	}
	for _, p := range res.Policies {
		if res.MeanIPC[p] <= 0 {
			t.Fatalf("policy %v has no IPC", p)
		}
	}
	// Smart policies must beat none-of-the-above sanity bounds.
	if res.MeanIPC[policy.ICOUNT] <= res.MeanIPC[policy.RR]*0.9 {
		t.Fatalf("ICOUNT (%v) not clearly better than RR (%v)",
			res.MeanIPC[policy.ICOUNT], res.MeanIPC[policy.RR])
	}
	out := res.Table().String()
	if !strings.Contains(out, "ICOUNT") || !strings.Contains(out, "Round-robin") {
		t.Fatal("Table 1 rendering incomplete")
	}
	if !strings.Contains(res.PerMixTable().String(), "int-compute") {
		t.Fatal("per-mix table rendering incomplete")
	}
}

func TestOracleExperiment(t *testing.T) {
	o := tiny()
	o.Mixes = []string{"mixed-lowipc"}
	res, err := RunOracle(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	v := res.PerMix["mixed-lowipc"]
	if v[0] <= 0 || v[1] <= 0 {
		t.Fatal("missing oracle results")
	}
	if !strings.Contains(res.Table().String(), "MEAN") {
		t.Fatal("oracle table missing mean row")
	}
}

func TestSaturationExperiment(t *testing.T) {
	o := tiny()
	o.Mixes = []string{"int-compute"}
	res, err := RunSaturation(context.Background(), o, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FixedIPC) != 2 || len(res.AdaptiveIPC) != 2 {
		t.Fatal("wrong series lengths")
	}
	// SMT premise: 4 threads beat 1 under both schedulers.
	if res.FixedIPC[1] <= res.FixedIPC[0] {
		t.Fatalf("no SMT speedup: %v", res.FixedIPC)
	}
	if !strings.Contains(res.Table().String(), "threads") {
		t.Fatal("saturation table rendering incomplete")
	}
}

func TestCalibrationExperiment(t *testing.T) {
	o := tiny()
	cal, err := RunCalibration(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if cal.L1MissRate <= 0 || cal.CondBrRate <= 0 {
		t.Fatalf("calibration produced zero rates: %+v", cal)
	}
	if len(cal.PerMix) != 2 {
		t.Fatalf("per-mix calibration has %d entries", len(cal.PerMix))
	}
	if !strings.Contains(cal.Table().String(), "paper threshold") {
		t.Fatal("calibration table rendering incomplete")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := DefaultOptions()
	if len(o.MixNames()) != len(trace.Mixes()) {
		t.Fatal("default options do not cover the full mix catalogue")
	}
	cfg := o.FixedConfig("kitchen-sink", policy.ICOUNT, 0)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg = o.ADTSConfig("kitchen-sink", detector.Type4, 3, 1)
	if cfg.Detector.IPCThreshold != 3 || cfg.Detector.Heuristic != detector.Type4 {
		t.Fatal("ADTS config not applied")
	}
	if o.ADTSConfig("m", detector.Type1, 1, 0).Seed == o.ADTSConfig("m", detector.Type1, 1, 1).Seed {
		t.Fatal("intervals must vary the seed")
	}
}

func TestRunTable1Policy(t *testing.T) {
	o := tiny()
	o.Mixes = []string{"int-compute"}
	ipc, err := RunTable1Policy(context.Background(), o, policy.ICOUNT)
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0 {
		t.Fatal("no IPC from single-policy Table 1 row")
	}
}

func TestFigure8Chart(t *testing.T) {
	s, err := RunSweep(context.Background(), tiny(), []float64{1, 2}, []detector.Heuristic{detector.Type1})
	if err != nil {
		t.Fatal(err)
	}
	out := s.Figure8Chart().String()
	if !strings.Contains(out, "fixed ICOUNT") || !strings.Contains(out, "m=1") {
		t.Fatalf("figure 8 chart incomplete:\n%s", out)
	}
}
