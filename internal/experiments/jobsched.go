package experiments

import (
	"context"
	"fmt"

	"repro/internal/detector"
	"repro/internal/jobsched"
	"repro/internal/pipeline"
	"repro/internal/stats"
	"repro/internal/trace"
)

// JobschedResult compares job-scheduling policies over the SMT core —
// the §3/§7 detector-thread/job-scheduler interplay experiment.
type JobschedResult struct {
	Policies []jobsched.Policy
	// IPC, DecisionStall and ClogEvictions are indexed by policy.
	IPC           []float64
	DecisionStall []uint64
	ClogEvictions []uint64
	Switches      []uint64
}

// RunJobsched multiplexes a 16-job pool (the whole profile catalogue)
// over 8 contexts for the given number of slices under every policy.
// The scheduler runs serially, so ctx is checked between intervals
// rather than threaded into the pool.
func RunJobsched(ctx context.Context, o Options, slices int) (*JobschedResult, error) {
	if slices <= 0 {
		slices = 12
	}
	pols := []jobsched.Policy{jobsched.RoundRobin, jobsched.Random, jobsched.IPCSensitive, jobsched.ClogAware}
	res := &JobschedResult{Policies: pols}
	for _, pol := range pols {
		var ipcs []float64
		var stall, clog, sw uint64
		for it := 0; it < o.Intervals; it++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			mix, _ := trace.MixByName("kitchen-sink")
			progs, err := mix.Programs(8, o.Seed+uint64(it))
			if err != nil {
				return nil, err
			}
			m := pipeline.New(o.machine(), progs, o.Seed+uint64(it))
			var jobs []*jobsched.Job
			for i, p := range trace.Profiles() {
				jobs = append(jobs, &jobsched.Job{
					Name: p.Name,
					Prog: trace.NewProgram(p, i%8, o.Seed+uint64(100*it+i)),
				})
			}
			cfg := jobsched.DefaultConfig()
			cfg.Slice = 65536
			cfg.Policy = pol
			cfg.Seed = o.Seed + uint64(it)
			det := detector.New(detector.DefaultConfig(8))
			s, err := jobsched.New(cfg, m, det, jobs)
			if err != nil {
				return nil, err
			}
			for i := 0; i < slices; i++ {
				s.RunSlice()
			}
			ipcs = append(ipcs, float64(s.TotalCommitted())/float64(m.Now()))
			st := s.Stats()
			stall += st.DecisionStall
			clog += st.ClogEvictions
			sw += st.Switches
		}
		res.IPC = append(res.IPC, stats.Mean(ipcs))
		res.DecisionStall = append(res.DecisionStall, stall/uint64(o.Intervals))
		res.ClogEvictions = append(res.ClogEvictions, clog/uint64(o.Intervals))
		res.Switches = append(res.Switches, sw/uint64(o.Intervals))
	}
	return res, nil
}

// Table renders the comparison.
func (r *JobschedResult) Table() *stats.Table {
	tb := &stats.Table{
		Title:  "Job scheduling over the SMT core: oblivious vs thread-sensitive vs DT-assisted (§3/§7)",
		Header: []string{"policy", "IPC", "switches", "clog evictions", "scheduler stall (cyc)"},
	}
	for i, p := range r.Policies {
		tb.AddRow(p.String(), stats.F(r.IPC[i]),
			fmt.Sprintf("%d", r.Switches[i]),
			fmt.Sprintf("%d", r.ClogEvictions[i]),
			fmt.Sprintf("%d", r.DecisionStall[i]))
	}
	return tb
}
