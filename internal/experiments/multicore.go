package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/stats"
)

// MultiCoreResult compares the thread-to-core allocation policies
// (random, symbiosis, synpa — see internal/multicore) on systems of
// N SMT cores, each core running the paper's fixed-ICOUNT baseline.
// The experiment follows the SYNPA-style methodology: the same mixes
// the single-core study uses are split across cores by each policy,
// and the question is how much of the single-core scheduling headroom
// a good pairing recovers.
type MultiCoreResult struct {
	Opts     Options
	Cores    []int
	Policies []string
	// SingleIPC is the single-core fixed-ICOUNT baseline (cross-mix
	// mean aggregate IPC) under the same options, for scale.
	SingleIPC float64
	// MeanIPC[ci][pi] is the cross-mix mean system IPC for Cores[ci]
	// under Policies[pi]; GeoIPC is the geometric mean (starved
	// threads skipped — see stats.GeoMeanSkipping) and Fairness the
	// mean Jain index over system-wide per-thread IPC.
	MeanIPC  [][]float64
	GeoIPC   [][]float64
	Fairness [][]float64
	// PerMixIPC[ci][pi][mix] is the per-mix mean system IPC.
	PerMixIPC []([]map[string]float64)
}

// RunMultiCore runs every mix × interval under each (core count,
// allocation policy) pair plus a single-core baseline. cores nil
// selects {2, 4}, the counts the multi-core study records. Thread
// counts that do not divide a requested core count are rejected by
// config validation, so callers keep the default 8 threads.
func RunMultiCore(ctx context.Context, o Options, cores []int) (*MultiCoreResult, error) {
	if cores == nil {
		cores = []int{2, 4}
	}
	policies := core.AllocationPolicies
	mixes := o.mixes()
	per := len(mixes) * o.Intervals

	var jobs []stats.Job
	for _, mix := range mixes {
		for it := 0; it < o.Intervals; it++ {
			jobs = append(jobs, stats.Job{
				Name:   jobName("mc-base", mix, "ICOUNT/c1", it),
				Config: o.FixedConfig(mix, policy.ICOUNT, it),
			})
		}
	}
	for _, c := range cores {
		for _, p := range policies {
			for _, mix := range mixes {
				for it := 0; it < o.Intervals; it++ {
					cfg := o.FixedConfig(mix, policy.ICOUNT, it)
					cfg.Cores = c
					cfg.Allocation = p
					jobs = append(jobs, stats.Job{
						Name:   jobName("mc", mix, fmt.Sprintf("%s/c%d", p, c), it),
						Config: cfg,
					})
				}
			}
		}
	}

	results, err := o.runAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	// A multi-core study churns through more machine geometries than
	// any other experiment (per-core shells at every threads/cores
	// split, plus single-thread profiling shells); drop them so the
	// next phase of a sweep does not inherit a pool full of shapes it
	// will never acquire.
	defer pipeline.DrainPools()

	res := &MultiCoreResult{Opts: o, Cores: cores, Policies: policies}
	_, res.SingleIPC = meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
		return results[mi*o.Intervals+it].AggregateIPC
	})
	base := per
	for range cores {
		meanRow := make([]float64, len(policies))
		geoRow := make([]float64, len(policies))
		fairRow := make([]float64, len(policies))
		perMixRow := make([]map[string]float64, len(policies))
		for pi := range policies {
			block := results[base : base+per]
			base += per
			perMix, mean := meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
				return block[mi*o.Intervals+it].AggregateIPC
			})
			var mixMeans []float64
			for _, mix := range mixes {
				mixMeans = append(mixMeans, perMix[mix])
			}
			_, fair := meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
				return block[mi*o.Intervals+it].FairnessJain
			})
			meanRow[pi] = mean
			geoRow[pi] = stats.GeoMean(mixMeans)
			fairRow[pi] = fair
			perMixRow[pi] = perMix
		}
		res.MeanIPC = append(res.MeanIPC, meanRow)
		res.GeoIPC = append(res.GeoIPC, geoRow)
		res.Fairness = append(res.Fairness, fairRow)
		res.PerMixIPC = append(res.PerMixIPC, perMixRow)
	}
	return res, nil
}

// Tables renders one per-mix table per core count plus the summary.
func (r *MultiCoreResult) Tables() []*stats.Table {
	var out []*stats.Table
	mixes := r.Opts.mixes()
	for ci, c := range r.Cores {
		tb := &stats.Table{
			Title:  fmt.Sprintf("Thread-to-core allocation — %d cores × fixed ICOUNT, system IPC per mix", c),
			Header: append([]string{"mix"}, r.Policies...),
		}
		for _, mix := range mixes {
			cells := []string{mix}
			for pi := range r.Policies {
				cells = append(cells, stats.F(r.PerMixIPC[ci][pi][mix]))
			}
			tb.AddRow(cells...)
		}
		mean := []string{"mean"}
		geo := []string{"geomean"}
		for pi := range r.Policies {
			mean = append(mean, stats.F(r.MeanIPC[ci][pi]))
			geo = append(geo, stats.F(r.GeoIPC[ci][pi]))
		}
		tb.AddRow(mean...)
		tb.AddRow(geo...)
		out = append(out, tb)
	}
	out = append(out, r.Summary())
	return out
}

// Summary renders mean system IPC, gain over the random allocator, and
// fairness for each (cores, policy) pair, anchored by the single-core
// baseline.
func (r *MultiCoreResult) Summary() *stats.Table {
	tb := &stats.Table{
		Title:  "Allocation policy summary — mean system IPC (gain vs random), Jain fairness",
		Header: []string{"cores", "policy", "mean IPC", "vs random", "fairness"},
	}
	tb.AddRow("1", "-", stats.F(r.SingleIPC), "-", "-")
	for ci, c := range r.Cores {
		ri := 0
		for pi, p := range r.Policies {
			if p == "random" {
				ri = pi
			}
		}
		for pi, p := range r.Policies {
			gain := "-"
			if pi != ri && r.MeanIPC[ci][ri] > 0 {
				gain = stats.Pct(r.MeanIPC[ci][pi]/r.MeanIPC[ci][ri] - 1)
			}
			tb.AddRow(fmt.Sprintf("%d", c), p, stats.F(r.MeanIPC[ci][pi]), gain, stats.F(r.Fairness[ci][pi]))
		}
	}
	return tb
}
