package experiments

import (
	"context"
	"fmt"

	"repro/internal/detector"
	"repro/internal/policy"
	"repro/internal/stats"
)

// SaturationResult is the thread-count scaling experiment behind the
// paper's §7 claim that adaptive scheduling "can significantly extend
// the saturation point in terms of number of threads".
type SaturationResult struct {
	Opts    Options
	Threads []int
	// FixedIPC and AdaptiveIPC are cross-mix mean IPCs per thread count.
	FixedIPC    []float64
	AdaptiveIPC []float64
}

// RunSaturation sweeps the thread count under fixed ICOUNT and under
// ADTS (Type 3, m = 2, the paper's best configuration).
func RunSaturation(ctx context.Context, o Options, threads []int) (*SaturationResult, error) {
	if threads == nil {
		threads = []int{1, 2, 4, 6, 8}
	}
	mixes := o.mixes()
	var jobs []stats.Job
	for _, n := range threads {
		on := o
		on.Threads = n
		for _, mix := range mixes {
			for it := 0; it < o.Intervals; it++ {
				jobs = append(jobs, stats.Job{
					Name:   jobName("fixed", mix, fmt.Sprintf("ICOUNT/t%d", n), it),
					Config: on.FixedConfig(mix, policy.ICOUNT, it),
				})
			}
		}
	}
	for _, n := range threads {
		on := o
		on.Threads = n
		for _, mix := range mixes {
			for it := 0; it < o.Intervals; it++ {
				jobs = append(jobs, stats.Job{
					Name:   jobName("adts", mix, fmt.Sprintf("T3m2/t%d", n), it),
					Config: on.ADTSConfig(mix, detector.Type3, 2, it),
				})
			}
		}
	}
	results, err := o.runAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	res := &SaturationResult{Opts: o, Threads: threads}
	per := len(mixes) * o.Intervals
	for ti := range threads {
		block := results[ti*per : (ti+1)*per]
		_, mean := meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
			return block[mi*o.Intervals+it].AggregateIPC
		})
		res.FixedIPC = append(res.FixedIPC, mean)
	}
	offset := len(threads) * per
	for ti := range threads {
		block := results[offset+ti*per : offset+(ti+1)*per]
		_, mean := meanByMix(mixes, o.Intervals, func(mi, it int) float64 {
			return block[mi*o.Intervals+it].AggregateIPC
		})
		res.AdaptiveIPC = append(res.AdaptiveIPC, mean)
	}
	return res, nil
}

// Table renders IPC versus thread count for both schedulers.
func (r *SaturationResult) Table() *stats.Table {
	tb := &stats.Table{
		Title:  "Thread-count scaling — fixed ICOUNT vs ADTS (Type 3, m=2), mean IPC over mixes",
		Header: []string{"threads", "fixed ICOUNT", "ADTS Type 3 m=2", "gain"},
	}
	for i, n := range r.Threads {
		gain := 0.0
		if r.FixedIPC[i] > 0 {
			gain = r.AdaptiveIPC[i]/r.FixedIPC[i] - 1
		}
		tb.AddRow(fmt.Sprintf("%d", n), stats.F(r.FixedIPC[i]), stats.F(r.AdaptiveIPC[i]), stats.Pct(gain))
	}
	return tb
}
