// Package experiments contains the drivers that regenerate every table
// and figure of the paper's evaluation (see DESIGN.md §4 for the index):
//
//   - Table 1  — the ten fetch policies, run fixed over all mixes;
//   - Figure 7 — switch counts and benign-switch probability versus the
//     IPC threshold and the policy-determination heuristic;
//   - Figure 8 — throughput versus threshold and heuristic;
//   - the §6 headline (best configuration and its gain over ICOUNT);
//   - the oracle upper bound the paper cites from its prior study;
//   - the homogeneous-versus-diverse mix comparison of §6/§7;
//   - the thread-count saturation experiment of §7;
//   - the §4.3.2 condition-threshold calibration methodology;
//   - the multi-core thread-to-core allocation comparison
//     (internal/multicore, docs/multicore.md).
//
// The same drivers back cmd/adts-sweep, the benchmark suite, and the
// numbers recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/pipeline"
	"repro/internal/policy"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options fixes the shared experimental conditions.
type Options struct {
	// Mixes to evaluate; nil means the full 13-mix catalogue.
	Mixes []string
	// Threads populated from each mix (the paper's main results use 8).
	Threads int
	// Quanta measured per run.
	Quanta int
	// Intervals per mix: each interval fast-forwards to a different
	// program region under a different seed and results are averaged,
	// standing in for the paper's ten random 1M-cycle intervals.
	Intervals int
	// Seed is the base RNG seed.
	Seed uint64
	// Workers bounds run parallelism; <= 0 uses GOMAXPROCS.
	Workers int
	// Machine returns the machine configuration (defaults to
	// pipeline.DefaultConfig; override for ablations).
	Machine func() pipeline.Config `json:"-"`

	// Checkpoint, when non-nil, records each completed run (keyed by
	// job name + config hash) and satisfies already-recorded runs on
	// resume instead of recomputing them.
	Checkpoint *runner.Checkpoint `json:"-"`
	// Progress, when non-nil, receives runner progress lines
	// (completed/total, jobs/sec, ETA); the CLI passes stderr.
	Progress io.Writer `json:"-"`
	// RunHook, when non-nil, is called after every job settles
	// (completed, resumed from checkpoint, or failed).
	RunHook func(runner.Event) `json:"-"`
	// Executor, when non-nil, evaluates each job instead of running the
	// simulation in-process — internal/fleet plugs in here to shard a
	// sweep across remote smtsimd backends. Executors are deterministic
	// (equal configs, equal results), so checkpoint/resume, progress,
	// and index-aligned output behave identically local or remote.
	Executor runner.Executor[core.Result] `json:"-"`
}

// DefaultOptions returns the configuration used for the recorded
// results: all mixes, 8 threads, 64 quanta x 3 intervals.
func DefaultOptions() Options {
	return Options{
		Threads:   8,
		Quanta:    64,
		Intervals: 3,
		Seed:      1,
	}
}

// MixNames returns the mixes the options select (the full catalogue
// when Mixes is nil).
func (o Options) MixNames() []string { return o.mixes() }

func (o Options) mixes() []string {
	if o.Mixes != nil {
		return o.Mixes
	}
	all := trace.Mixes()
	names := make([]string, len(all))
	for i, m := range all {
		names[i] = m.Name
	}
	return names
}

func (o Options) machine() pipeline.Config {
	if o.Machine != nil {
		return o.Machine()
	}
	return pipeline.DefaultConfig()
}

// baseConfig builds the common simulation config for one mix/interval.
func (o Options) baseConfig(mix string, interval int) core.Config {
	cfg := core.DefaultConfig(mix)
	cfg.Threads = o.Threads
	cfg.Machine = o.machine()
	cfg.Detector = detector.DefaultConfig(o.Threads)
	cfg.Quanta = o.Quanta
	cfg.Seed = o.Seed + uint64(interval)*0x9e3779b9
	cfg.FastForward = 16384 + int64(interval)*24576
	return cfg
}

// FixedConfig returns a fixed-policy run configuration.
func (o Options) FixedConfig(mix string, p policy.Policy, interval int) core.Config {
	cfg := o.baseConfig(mix, interval)
	cfg.Mode = core.ModeFixed
	cfg.FixedPolicy = p
	return cfg
}

// ADTSConfig returns an adaptive run configuration.
func (o Options) ADTSConfig(mix string, h detector.Heuristic, threshold float64, interval int) core.Config {
	cfg := o.baseConfig(mix, interval)
	cfg.Mode = core.ModeADTS
	cfg.Detector.Heuristic = h
	cfg.Detector.IPCThreshold = threshold
	return cfg
}

// OracleConfig returns an oracle-scheduled run configuration.
func (o Options) OracleConfig(mix string, interval int) core.Config {
	cfg := o.baseConfig(mix, interval)
	cfg.Mode = core.ModeOracle
	return cfg
}

// runAll executes the jobs through the resilient runner with the
// options' worker bound, checkpoint, progress writer, hook, and
// executor (nil = local simulation).
func (o Options) runAll(ctx context.Context, jobs []stats.Job) ([]core.Result, error) {
	return runner.RunWith(ctx, stats.RunnerJobs(jobs), runner.Options{
		Workers:    o.Workers,
		Checkpoint: o.Checkpoint,
		Progress:   o.Progress,
		Hook:       o.RunHook,
	}, o.Executor)
}

// meanByMix averages per-interval results grouped by mix name and
// returns both the per-mix means and the cross-mix mean.
func meanByMix(mixes []string, intervals int, pick func(mixIdx, interval int) float64) (perMix map[string]float64, mean float64) {
	perMix = make(map[string]float64, len(mixes))
	var all []float64
	for mi, mix := range mixes {
		var vals []float64
		for it := 0; it < intervals; it++ {
			vals = append(vals, pick(mi, it))
		}
		m := stats.Mean(vals)
		perMix[mix] = m
		all = append(all, m)
	}
	return perMix, stats.Mean(all)
}

// jobName labels a run for error reporting.
func jobName(kind, mix string, detail string, interval int) string {
	return fmt.Sprintf("%s/%s/%s/i%d", kind, mix, detail, interval)
}
