package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/detector"
	"repro/internal/runner"
)

// TestSweepResumeDeterminism is the acceptance property of the runner:
// a sweep interrupted mid-run and resumed from its checkpoint renders
// output byte-identical to an uninterrupted run.
func TestSweepResumeDeterminism(t *testing.T) {
	o := tiny()
	thresholds := []float64{1, 2}
	heuristics := []detector.Heuristic{detector.Type1, detector.Type3}

	fresh, err := RunSweep(context.Background(), o, thresholds, heuristics)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel the context after the third job settles.
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	cp, err := runner.Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	oi := o
	oi.Workers = 1
	oi.Checkpoint = cp
	var settled atomic.Int32
	oi.RunHook = func(e runner.Event) {
		if settled.Add(1) == 3 {
			cancel()
		}
	}
	if _, err := RunSweep(ctx, oi, thresholds, heuristics); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep err = %v, want context.Canceled", err)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: completed jobs must be satisfied from the checkpoint, the
	// rest recomputed, and every figure must match the fresh run.
	cp2, err := runner.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp2.Close()
	already := cp2.Len()
	if already == 0 {
		t.Fatal("interrupt flushed no runs to the checkpoint")
	}
	or := o
	or.Checkpoint = cp2
	var resumedJobs atomic.Int32
	or.RunHook = func(e runner.Event) {
		if e.Resumed {
			resumedJobs.Add(1)
		}
	}
	resumed, err := RunSweep(context.Background(), or, thresholds, heuristics)
	if err != nil {
		t.Fatal(err)
	}
	if int(resumedJobs.Load()) != already {
		t.Fatalf("resume satisfied %d jobs from checkpoint, want %d", resumedJobs.Load(), already)
	}

	for name, pair := range map[string][2]string{
		"fig7switches": {fresh.Figure7Switches().String(), resumed.Figure7Switches().String()},
		"fig7benign":   {fresh.Figure7Benign().String(), resumed.Figure7Benign().String()},
		"fig8ipc":      {fresh.Figure8IPC().String(), resumed.Figure8IPC().String()},
		"fig8improv":   {fresh.Figure8Improvement().String(), resumed.Figure8Improvement().String()},
		"fig8chart":    {fresh.Figure8Chart().String(), resumed.Figure8Chart().String()},
		"headline":     {fresh.Headline(), resumed.Headline()},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s differs after resume:\nfresh:\n%s\nresumed:\n%s", name, pair[0], pair[1])
		}
	}
	if !reflect.DeepEqual(fresh.Cells, resumed.Cells) {
		t.Error("cell grids differ after resume")
	}
	if fresh.BaselineIPC != resumed.BaselineIPC {
		t.Errorf("baseline differs: %v vs %v", fresh.BaselineIPC, resumed.BaselineIPC)
	}
}

// TestSweepWorkerCountInvariance: results are index-aligned, so the
// pool width must not change any figure.
func TestSweepWorkerCountInvariance(t *testing.T) {
	o := tiny()
	o.Quanta = 2
	thresholds := []float64{2}
	heuristics := []detector.Heuristic{detector.Type3}
	o.Workers = 1
	serial, err := RunSweep(context.Background(), o, thresholds, heuristics)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	wide, err := RunSweep(context.Background(), o, thresholds, heuristics)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := wide.Figure8IPC().String(), serial.Figure8IPC().String(); got != want {
		t.Fatalf("worker count changed results:\n1 worker:\n%s\n4 workers:\n%s", want, got)
	}
}

// TestRunJobschedCancelled: the serial experiment also honours ctx.
func TestRunJobschedCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunJobsched(ctx, tiny(), 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
