package experiments

import (
	"context"

	"repro/internal/policy"
	"repro/internal/stats"
)

// Calibration holds the per-cycle event-rate averages the paper's
// methodology derives the COND_MEM / COND_BR thresholds from: "we ran
// eight-thread simulation ... with our 13 different mixes of
// applications and ended up with an average value for each metric"
// (§4.3.2).
type Calibration struct {
	L1MissRate  float64
	LSQFullRate float64
	MispredRate float64
	CondBrRate  float64
	// PerMix records each mix's rates for inspection.
	PerMix map[string][4]float64
}

// RunCalibration reproduces the threshold-derivation methodology:
// fixed-ICOUNT runs over all mixes, averaging the four condition
// metrics. The detector's DefaultConfig ships the paper's published
// values; this shows where this simulator's own averages land.
func RunCalibration(ctx context.Context, o Options) (*Calibration, error) {
	mixes := o.mixes()
	var jobs []stats.Job
	for _, mix := range mixes {
		for it := 0; it < o.Intervals; it++ {
			jobs = append(jobs, stats.Job{
				Name:   jobName("calibrate", mix, "ICOUNT", it),
				Config: o.FixedConfig(mix, policy.ICOUNT, it),
			})
		}
	}
	results, err := o.runAll(ctx, jobs)
	if err != nil {
		return nil, err
	}
	cal := &Calibration{PerMix: make(map[string][4]float64, len(mixes))}
	var l1, lsq, misp, cbr []float64
	for mi, mix := range mixes {
		var a, b, c, d []float64
		for it := 0; it < o.Intervals; it++ {
			r := results[mi*o.Intervals+it]
			a = append(a, r.L1MissRate)
			b = append(b, r.LSQFullRate)
			c = append(c, r.MispredRate)
			d = append(d, r.CondBrRate)
		}
		v := [4]float64{stats.Mean(a), stats.Mean(b), stats.Mean(c), stats.Mean(d)}
		cal.PerMix[mix] = v
		l1 = append(l1, v[0])
		lsq = append(lsq, v[1])
		misp = append(misp, v[2])
		cbr = append(cbr, v[3])
	}
	cal.L1MissRate = stats.Mean(l1)
	cal.LSQFullRate = stats.Mean(lsq)
	cal.MispredRate = stats.Mean(misp)
	cal.CondBrRate = stats.Mean(cbr)
	return cal, nil
}

// Table renders the calibration next to the paper's published
// thresholds.
func (c *Calibration) Table() *stats.Table {
	tb := &stats.Table{
		Title:  "Condition-threshold calibration (§4.3.2 methodology): per-cycle averages over mixes",
		Header: []string{"metric", "this simulator", "paper threshold"},
	}
	tb.AddRow("L1 misses / cycle", stats.F(c.L1MissRate), "0.19")
	tb.AddRow("LSQ-full events / cycle", stats.F(c.LSQFullRate), "0.45")
	tb.AddRow("branch mispredicts / cycle", stats.F(c.MispredRate), "0.02")
	tb.AddRow("conditional branches / cycle", stats.F(c.CondBrRate), "0.38")
	return tb
}
