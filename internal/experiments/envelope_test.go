package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/policy"
)

func TestEnvelopeAtLeastBaseline(t *testing.T) {
	o := tiny()
	o.Mixes = []string{"mixed-lowipc"}
	res, err := RunEnvelope(context.Background(), o, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The per-quantum max over a set that includes ICOUNT can never be
	// below ICOUNT itself.
	if res.EnvelopeIPC < res.BaselineIPC {
		t.Fatalf("envelope %.3f below its own baseline %.3f", res.EnvelopeIPC, res.BaselineIPC)
	}
	if res.Headroom() < 0 {
		t.Fatalf("negative envelope headroom %.3f", res.Headroom())
	}
	if !strings.Contains(res.Table().String(), "apparent headroom") {
		t.Fatal("envelope table rendering incomplete")
	}
}

func TestEnvelopeSinglePolicyIsIdentity(t *testing.T) {
	o := tiny()
	o.Mixes = []string{"int-compute"}
	res, err := RunEnvelope(context.Background(), o, []policy.Policy{policy.ICOUNT})
	if err != nil {
		t.Fatal(err)
	}
	if res.EnvelopeIPC != res.BaselineIPC {
		t.Fatalf("single-policy envelope %.6f != baseline %.6f", res.EnvelopeIPC, res.BaselineIPC)
	}
}

func TestJobschedExperiment(t *testing.T) {
	o := tiny()
	o.Intervals = 1
	res, err := RunJobsched(context.Background(), o, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 4 {
		t.Fatalf("%d policies", len(res.Policies))
	}
	for i, p := range res.Policies {
		if res.IPC[i] <= 0 {
			t.Fatalf("%v produced no throughput", p)
		}
	}
	// The DT-assisted scheduler must pay less decision stall than the
	// oblivious ones (that is the §3 claim being modelled).
	if res.DecisionStall[3] >= res.DecisionStall[0] {
		t.Fatalf("clog-aware stall %d not below round-robin %d",
			res.DecisionStall[3], res.DecisionStall[0])
	}
	if !strings.Contains(res.Table().String(), "clog") {
		t.Fatal("jobsched table rendering incomplete")
	}
}
