// Package chaos is the deterministic fault-injection layer behind the
// `-tags chaos` end-to-end suite: a seeded http.RoundTripper wrapper
// (Transport) that injects network and protocol faults into fleet →
// smtsimd traffic, and a seeded io.WriteCloser wrapper (Writer) that
// tears checkpoint appends mid-line the way a kill -9 or power loss
// would.
//
// Every fault decision is a pure function of (Seed, event index): event
// N derives its own PCG stream from the seed, so a logged seed replays
// the exact same fault sequence — latency spikes on the same calls,
// the same bytes corrupted — regardless of wall clock or scheduler
// interleaving of *decisions* (the set of injected faults is
// reproducible even though goroutine interleaving may reorder which
// request observes which event index).
//
// The package injects faults; it never hides them. Counters record how
// many of each class actually fired so a test that asserts "the system
// survived corruption" can also assert corruption happened.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"sync/atomic"
)

// Fault enumerates the injectable fault classes.
type Fault int

const (
	// FaultReset severs the connection: the request errors without a
	// response, as if the backend died mid-handshake.
	FaultReset Fault = iota
	// FaultLatency delays the request by the configured spike before
	// forwarding it.
	FaultLatency
	// FaultTruncate forwards the request but cuts the response body
	// short, simulating a connection dropped mid-transfer.
	FaultTruncate
	// FaultCorrupt forwards the request but flips bits in the response
	// body, simulating in-flight corruption the TCP checksum missed.
	FaultCorrupt
	// Fault5xx synthesizes an HTTP 500 without contacting the backend,
	// and keeps doing so for BurstLen consecutive calls (a crash loop
	// or overloaded proxy, not an isolated blip).
	Fault5xx
	// FaultTear is recorded by Writer when it tears a write. It is
	// never drawn by Transport.
	FaultTear
	// FaultDiskFull is recorded by DiskFull when its byte budget runs
	// out and a write fails with ENOSPC. Never drawn by Transport.
	FaultDiskFull
	// FaultRot is recorded by RotFile when it flips a stored bit.
	// Never drawn by Transport.
	FaultRot

	numFaults
)

func (f Fault) String() string {
	switch f {
	case FaultReset:
		return "reset"
	case FaultLatency:
		return "latency"
	case FaultTruncate:
		return "truncate"
	case FaultCorrupt:
		return "corrupt"
	case Fault5xx:
		return "5xx"
	case FaultTear:
		return "tear"
	case FaultDiskFull:
		return "diskfull"
	case FaultRot:
		return "rot"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// counters tallies injected faults per class.
type counters struct {
	n [numFaults]atomic.Int64
}

func (c *counters) add(f Fault) { c.n[f].Add(1) }

func (c *counters) get(f Fault) int64 { return c.n[f].Load() }

func (c *counters) total() int64 {
	var t int64
	for i := range c.n {
		t += c.n[i].Load()
	}
	return t
}

func (c *counters) String() string {
	var parts []string
	for f := Fault(0); f < numFaults; f++ {
		if n := c.n[f].Load(); n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f, n))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// eventRand derives the RNG for event n of stream seed. Each event gets
// its own PCG, so the decision for event n never depends on how many
// random draws earlier events consumed.
func eventRand(seed, n uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, n))
}
