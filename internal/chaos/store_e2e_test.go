//go:build chaos

package chaos_test

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/simrun"
	"repro/internal/simserver"
)

// corruptDigests is a middleware that bit-flips the first character of
// every "digest" value in the response body — NDJSON batch lines,
// /v1/runcfg replies, and /v1/result entries alike. The payload bytes
// stay intact, so only end-to-end digest verification can catch it.
type corruptDigests struct {
	next http.Handler
}

func (c corruptDigests) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.next.ServeHTTP(&digestFlipWriter{ResponseWriter: w}, r)
}

type digestFlipWriter struct {
	http.ResponseWriter
}

var digestMark = []byte(`"digest":"`)

func (w *digestFlipWriter) Write(p []byte) (int, error) {
	n := len(p)
	if i := bytes.Index(p, digestMark); i >= 0 && i+len(digestMark) < len(p) {
		p = bytes.Clone(p)
		j := i + len(digestMark)
		if p[j] == '0' {
			p[j] = '1'
		} else {
			p[j] = '0'
		}
	}
	if _, err := w.ResponseWriter.Write(p); err != nil {
		return 0, err
	}
	return n, nil
}

func (w *digestFlipWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestBatchSweepSurvivesKilledAndCorruptBackends is the store/batch
// acceptance test: a batch-dispatched sweep over three backends — one
// killed mid-stream, one serving bit-flipped NDJSON digests — must
// render byte-identical to the fault-free local run. The kill forces a
// chunk retry (truncated stream, no trailer); the corruption forces
// per-line rejection and per-item fallback.
func TestBatchSweepSurvivesKilledAndCorruptBackends(t *testing.T) {
	want := groundTruth(t)

	honest := startBackends(t, 1, simserver.Config{})

	// The victim simulates slowly so its first batch stream is still in
	// flight when the kill lands; the kill closes every open connection
	// and then the listener, exactly a SIGKILL's client-visible shape.
	var killOnce sync.Once
	victimSrv := simserver.New(simserver.Config{
		Workers: 2,
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			time.Sleep(2 * time.Millisecond)
			return simrun.Run(ctx, cfg)
		},
	})
	victim := httptest.NewServer(victimSrv.Handler())
	t.Cleanup(victim.Close)
	killer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasPrefix(r.URL.Path, "/v1/batch") {
			killOnce.Do(func() {
				go func() {
					time.Sleep(5 * time.Millisecond)
					victim.CloseClientConnections()
					victim.Close()
				}()
			})
		}
		victim.Config.Handler.ServeHTTP(w, r)
	}))
	t.Cleanup(killer.Close)

	liarSrv := simserver.New(simserver.Config{Workers: 2})
	liar := httptest.NewServer(corruptDigests{next: liarSrv.Handler()})
	t.Cleanup(liar.Close)

	urls := []string{honest[0], killer.URL, liar.URL}
	peers, err := fleet.NewPeerLookup(urls, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	c := chaosClient(t, urls, nil, func(cfg *fleet.Config) {
		cfg.HTTPClient = nil // real transport; the faults are the backends
		cfg.BatchSize = 8
		cfg.PeerLookup = peers
	})

	o := chaosOptions()
	o.Workers = 4
	o.Executor = c.BatchExecutor()
	sweep, err := experiments.RunSweep(context.Background(), o, chaosThresholds, chaosHeuristics)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderSweep(sweep); got != want {
		t.Fatalf("batch sweep with killed + corrupt backends diverges from local run\nwant:\n%s\ngot:\n%s", want, got)
	}

	var sb strings.Builder
	c.WriteMetrics(&sb)
	m := sb.String()
	for _, needle := range []string{"fleet_batches_total", "fleet_batch_items_total"} {
		if !strings.Contains(m, needle) {
			t.Fatalf("metrics missing %s:\n%s", needle, m)
		}
	}
	if strings.Contains(m, "fleet_digest_mismatch_total 0\n") {
		t.Fatalf("corrupt backend's digests were never rejected — the test exercised nothing:\n%s", m)
	}
	if strings.Contains(m, "fleet_batch_item_fallback_total 0\n") {
		t.Fatalf("no batch item fell back to per-item dispatch — corruption path unexercised:\n%s", m)
	}
}
