package chaos

import (
	"errors"
	"io"
)

// ErrTorn is returned by a Writer once it has torn the stream: the
// write in flight was cut short and every later write is refused, the
// way a process killed mid-write never writes again.
var ErrTorn = errors.New("chaos: torn write (injected crash)")

// Writer wraps an io.WriteCloser and simulates a kill -9 during an
// append: the first write that would push the stream past TearAfter
// bytes is written only up to the boundary and then fails with ErrTorn,
// leaving a partial record on disk exactly like an interrupted
// appender would. Subsequent writes fail immediately.
//
// It implements the optional Sync method (forwarded to the underlying
// writer when present) so fsync-per-record code paths exercise the same
// seam.
type Writer struct {
	inner     io.WriteCloser
	remaining int64
	torn      bool
	stats     counters
}

// NewWriter wraps w; the stream tears once tearAfter total bytes have
// been written. tearAfter <= 0 tears on the first write.
func NewWriter(w io.WriteCloser, tearAfter int64) *Writer {
	return &Writer{inner: w, remaining: tearAfter}
}

// Torn reports whether the tear has fired.
func (w *Writer) Torn() bool { return w.torn }

func (w *Writer) Write(p []byte) (int, error) {
	if w.torn {
		return 0, ErrTorn
	}
	if int64(len(p)) <= w.remaining {
		n, err := w.inner.Write(p)
		w.remaining -= int64(n)
		return n, err
	}
	w.torn = true
	w.stats.add(FaultTear)
	n, _ := w.inner.Write(p[:w.remaining])
	w.remaining = 0
	return n, ErrTorn
}

// Sync forwards to the underlying writer's Sync when it has one (e.g.
// *os.File). A torn writer refuses to sync, like a dead process.
func (w *Writer) Sync() error {
	if w.torn {
		return ErrTorn
	}
	if s, ok := w.inner.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

// Close closes the underlying writer. It stays callable after the tear
// so deferred cleanup in the crashed-process simulation still releases
// the file handle.
func (w *Writer) Close() error { return w.inner.Close() }
