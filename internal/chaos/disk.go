package chaos

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"syscall"
)

// DiskFull simulates a filesystem running out of space: a shared byte
// budget across every writer it wraps, decremented on each write. Once
// the budget is exhausted, writes fail with an error that unwraps to
// syscall.ENOSPC — exactly what the resultstore disk tier classifies as
// a write fault — so a store wired through Wrap degrades to readonly
// the way it would on a real full disk. Refill models the operator (or
// log rotation) freeing space, after which the tier's recovery probe
// succeeds.
//
// It plugs into resultstore.DiskOptions.WrapWriter:
//
//	full := chaos.NewDiskFull(64 << 10)
//	OpenDisk(dir, DiskOptions{WrapWriter: full.Wrap})
type DiskFull struct {
	budget atomic.Int64
	stats  counters
}

// NewDiskFull builds a disk-full injector with capacity bytes of
// remaining space.
func NewDiskFull(capacity int64) *DiskFull {
	d := &DiskFull{}
	d.budget.Store(capacity)
	return d
}

// Refill resets the remaining space to capacity ("the operator cleaned
// up the disk").
func (d *DiskFull) Refill(capacity int64) { d.budget.Store(capacity) }

// Remaining reports the unconsumed byte budget.
func (d *DiskFull) Remaining() int64 { return d.budget.Load() }

// Fired reports how many writes have failed with the injected ENOSPC.
func (d *DiskFull) Fired() int64 { return d.stats.get(FaultDiskFull) }

// Wrap returns w metered against the shared budget. The signature
// matches resultstore.DiskOptions.WrapWriter.
func (d *DiskFull) Wrap(w io.WriteCloser) io.WriteCloser {
	return &fullWriter{inner: w, disk: d}
}

type fullWriter struct {
	inner io.WriteCloser
	disk  *DiskFull
}

func (w *fullWriter) Write(p []byte) (int, error) {
	need := int64(len(p))
	for {
		cur := w.disk.budget.Load()
		if cur < need {
			// Like a real ENOSPC: whatever fits lands, the rest fails.
			if !w.disk.budget.CompareAndSwap(cur, 0) {
				continue
			}
			w.disk.stats.add(FaultDiskFull)
			n := 0
			if cur > 0 {
				n, _ = w.inner.Write(p[:cur])
			}
			return n, fmt.Errorf("chaos: disk full: %w", syscall.ENOSPC)
		}
		if w.disk.budget.CompareAndSwap(cur, cur-need) {
			break
		}
	}
	return w.inner.Write(p)
}

// Sync forwards to the underlying writer's Sync when it has one.
func (w *fullWriter) Sync() error {
	if s, ok := w.inner.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

func (w *fullWriter) Close() error { return w.inner.Close() }

// RotFile simulates media bit rot: it flips exactly one bit of the file
// at path, chosen deterministically from seed, and returns which
// (offset, bit) rotted. Any single-bit flip in a resultstore entry file
// is detectable — it either breaks the record's JSON structure or lands
// inside checksummed bytes — so a rotted store heals instead of serving
// the flip.
func RotFile(path string, seed uint64) (offset int64, bit uint, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	if len(raw) == 0 {
		return 0, 0, fmt.Errorf("chaos: cannot rot empty file %s", path)
	}
	rng := eventRand(seed, 0)
	i := rng.IntN(len(raw))
	b := uint(rng.IntN(8))
	raw[i] ^= 1 << b
	info, err := os.Stat(path)
	if err != nil {
		return 0, 0, err
	}
	if err := os.WriteFile(path, raw, info.Mode().Perm()); err != nil {
		return 0, 0, err
	}
	rotStats.add(FaultRot)
	return int64(i), b, nil
}

// rotStats counts RotFile flips package-wide (RotFile has no receiver
// to hang per-injector counters on).
var rotStats counters

// RotsFired reports how many bits RotFile has flipped.
func RotsFired() int64 { return rotStats.get(FaultRot) }
