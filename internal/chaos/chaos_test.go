package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// faultSequence drives n requests through a transport against a stub
// backend and records which fault (if any) hit each request.
func faultSequence(t *testing.T, tr *Transport, n int) []string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 2048))
	}))
	defer ts.Close()
	client := &http.Client{Transport: tr}

	var seq []string
	for i := 0; i < n; i++ {
		resp, err := client.Get(ts.URL)
		switch {
		case err != nil:
			seq = append(seq, "error")
			continue
		case resp.StatusCode == http.StatusInternalServerError:
			seq = append(seq, "5xx")
		default:
			body, rerr := io.ReadAll(resp.Body)
			switch {
			case rerr != nil || len(body) != 2048:
				seq = append(seq, "short")
			case string(body) != strings.Repeat("x", 2048):
				seq = append(seq, "corrupt")
			default:
				seq = append(seq, "ok")
			}
		}
		resp.Body.Close()
	}
	return seq
}

func TestTransportDeterministicFromSeed(t *testing.T) {
	cfg := TransportConfig{
		Seed:          42,
		ResetRate:     0.15,
		TruncateRate:  0.15,
		CorruptRate:   0.15,
		ServerErrRate: 0.1,
		BurstLen:      2,
	}
	a := faultSequence(t, NewTransport(cfg), 40)
	b := faultSequence(t, NewTransport(cfg), 40)
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same seed produced different fault sequences:\n%v\n%v", a, b)
	}
	// A different seed must not replay the same sequence (vanishingly
	// unlikely over 40 draws at these rates).
	cfg.Seed = 43
	c := faultSequence(t, NewTransport(cfg), 40)
	if strings.Join(a, ",") == strings.Join(c, ",") {
		t.Fatalf("different seeds produced identical fault sequences")
	}
	joined := strings.Join(a, ",")
	for _, class := range []string{"error", "short", "5xx", "ok"} {
		if !strings.Contains(joined, class) {
			t.Errorf("sequence %v never produced %q; rates too low to exercise the class", a, class)
		}
	}
}

func TestTransportBurst5xx(t *testing.T) {
	// ServerErrRate 1 means the first draw starts a burst; the
	// following BurstLen-1 requests are swallowed without a draw.
	tr := NewTransport(TransportConfig{Seed: 1, ServerErrRate: 1, BurstLen: 3})
	seq := faultSequence(t, tr, 6)
	want := []string{"5xx", "5xx", "5xx", "5xx", "5xx", "5xx"}
	if strings.Join(seq, ",") != strings.Join(want, ",") {
		t.Fatalf("burst sequence = %v, want all 5xx", seq)
	}
	if got := tr.Injected(Fault5xx); got != 6 {
		t.Fatalf("Injected(Fault5xx) = %d, want 6", got)
	}
}

func TestTransportCountsAndSummary(t *testing.T) {
	tr := NewTransport(TransportConfig{Seed: 7, ResetRate: 1})
	if _, err := (&http.Client{Transport: tr}).Get("http://invalid.test/"); err == nil {
		t.Fatal("reset-rate-1 transport let a request through")
	}
	if tr.Injected(FaultReset) != 1 || tr.InjectedTotal() != 1 {
		t.Fatalf("counters = reset:%d total:%d, want 1/1", tr.Injected(FaultReset), tr.InjectedTotal())
	}
	if s := tr.Summary(); !strings.Contains(s, "seed=7") || !strings.Contains(s, "reset=1") {
		t.Fatalf("Summary() = %q, want seed and reset tally", s)
	}
}

func TestWriterTearsMidWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, 10)
	if n, err := w.Write([]byte("12345678")); n != 8 || err != nil {
		t.Fatalf("pre-tear write = (%d, %v), want (8, nil)", n, err)
	}
	n, err := w.Write([]byte("abcdefgh"))
	if !errors.Is(err, ErrTorn) {
		t.Fatalf("tearing write err = %v, want ErrTorn", err)
	}
	if n != 2 {
		t.Fatalf("tearing write wrote %d bytes, want the 2 up to the boundary", n)
	}
	if !w.Torn() {
		t.Fatal("Torn() = false after tear")
	}
	if _, err := w.Write([]byte("z")); !errors.Is(err, ErrTorn) {
		t.Fatalf("post-tear write err = %v, want ErrTorn", err)
	}
	if err := w.Sync(); !errors.Is(err, ErrTorn) {
		t.Fatalf("post-tear Sync err = %v, want ErrTorn", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close after tear: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "12345678ab" {
		t.Fatalf("file = %q, want exactly the 10 bytes before the tear", data)
	}
}

func TestWriterSyncPassthrough(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "out"))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, 1<<20)
	if _, err := w.Write([]byte("hello\n")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync passthrough: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
