//go:build chaos

// End-to-end chaos suite (run with `go test -race -tags chaos ./...`
// or `make chaos`): a real 3-backend sweep is pushed through the
// fault-injecting Transport one fault class at a time, and the rendered
// output must stay byte-identical to a fault-free local run. A separate
// test plants a byzantine backend (self-consistent lies) and proves the
// audit quarantines it; another tears the checkpoint file mid-sweep and
// proves -resume completes the sweep unpoisoned.
package chaos_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/runner"
	"repro/internal/simrun"
	"repro/internal/simserver"
)

var (
	chaosThresholds = []float64{1, 2}
	chaosHeuristics = []detector.Heuristic{detector.Type1, detector.Type3}
)

// renderSweep concatenates every figure a sweep produces — the byte
// stream adts-sweep would print — so chaos and fault-free runs can be
// compared byte for byte.
func renderSweep(s *experiments.Sweep) string {
	return strings.Join([]string{
		s.Figure7Switches().String(),
		s.Figure7Benign().String(),
		s.Figure8IPC().String(),
		s.Figure8Improvement().String(),
		s.Figure8Chart().String(),
		s.Headline(),
	}, "\n")
}

func chaosOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Mixes = []string{"int-compute", "mixed-lowipc"}
	o.Quanta = 4
	o.Intervals = 2
	return o
}

// groundTruth runs the sweep fault-free and in-process, once.
func groundTruth(t *testing.T) string {
	t.Helper()
	local, err := experiments.RunSweep(context.Background(), chaosOptions(), chaosThresholds, chaosHeuristics)
	if err != nil {
		t.Fatal(err)
	}
	return renderSweep(local)
}

// startBackends spins up n in-process smtsimd instances.
func startBackends(t *testing.T, n int, cfg simserver.Config) []string {
	t.Helper()
	var urls []string
	for i := 0; i < n; i++ {
		c := cfg
		if c.Workers == 0 {
			c.Workers = 2
		}
		sim := simserver.New(c)
		ts := httptest.NewServer(sim.Handler())
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	return urls
}

// chaosClient builds a fleet client whose every request passes through
// the fault-injecting transport.
func chaosClient(t *testing.T, urls []string, tr *chaos.Transport, mutate func(*fleet.Config)) *fleet.Client {
	t.Helper()
	cfg := fleet.Config{
		Backends:         urls,
		MaxRetries:       10,
		ProbeInterval:    100 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  50 * time.Millisecond,
		BackoffBase:      time.Millisecond,
		BackoffMax:       20 * time.Millisecond,
		// Transport-level corruption blames innocent backends; keep the
		// quarantine out of reach so these tests exercise retry, not
		// pool shrinkage. The byzantine test lowers it again.
		QuarantineThreshold: 1 << 30,
		HTTPClient:          &http.Client{Transport: tr},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestSweepByteIdenticalUnderEachFaultClass is the tentpole acceptance
// test: for every fault class (and one storm mixing them all), a
// 3-backend fleet sweep behind the chaos transport must render output
// byte-identical to the fault-free local run, and the transport must
// confirm the faults actually fired.
func TestSweepByteIdenticalUnderEachFaultClass(t *testing.T) {
	want := groundTruth(t)

	classes := []struct {
		name  string
		fault chaos.Fault
		cfg   chaos.TransportConfig
	}{
		{"reset", chaos.FaultReset, chaos.TransportConfig{Seed: 11, ResetRate: 0.15}},
		{"latency", chaos.FaultLatency, chaos.TransportConfig{Seed: 12, LatencyRate: 0.2, Latency: 5 * time.Millisecond}},
		{"truncate", chaos.FaultTruncate, chaos.TransportConfig{Seed: 13, TruncateRate: 0.15}},
		{"corrupt", chaos.FaultCorrupt, chaos.TransportConfig{Seed: 14, CorruptRate: 0.15}},
		{"5xx-burst", chaos.Fault5xx, chaos.TransportConfig{Seed: 15, ServerErrRate: 0.08, BurstLen: 2}},
		{"storm", chaos.Fault(-1), chaos.TransportConfig{
			Seed: 16, ResetRate: 0.05, LatencyRate: 0.05, Latency: 5 * time.Millisecond,
			TruncateRate: 0.05, CorruptRate: 0.05, ServerErrRate: 0.03, BurstLen: 2,
		}},
	}
	for _, tc := range classes {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			urls := startBackends(t, 3, simserver.Config{})
			tr := chaos.NewTransport(tc.cfg)
			c := chaosClient(t, urls, tr, nil)

			o := chaosOptions()
			o.Workers = 4
			o.Executor = c.Executor()
			sweep, err := experiments.RunSweep(context.Background(), o, chaosThresholds, chaosHeuristics)
			if err != nil {
				t.Fatalf("sweep under %s faults (seed %d) failed: %v\n%s",
					tc.name, tr.Seed(), err, tr.Summary())
			}
			if got := renderSweep(sweep); got != want {
				t.Fatalf("sweep under %s faults diverges from fault-free run (seed %d, %s)\nwant:\n%s\ngot:\n%s",
					tc.name, tr.Seed(), tr.Summary(), want, got)
			}
			if tr.InjectedTotal() == 0 {
				t.Fatalf("no %s faults fired (seed %d): the test exercised nothing — raise the rate", tc.name, tr.Seed())
			}
			if tc.fault >= 0 && tr.Injected(tc.fault) == 0 {
				t.Fatalf("fault class %s never fired (seed %d): %s", tc.fault, tr.Seed(), tr.Summary())
			}
			t.Logf("%s: byte-identical, %s", tc.name, tr.Summary())
		})
	}
}

// TestByzantineBackendQuarantinedWithinAuditWindow plants one backend
// whose Run lies consistently (its digests match the lie, so transport
// verification passes). With auditing on, the majority vote must
// quarantine it during the sweep, and the output must still be
// byte-identical to the honest run.
func TestByzantineBackendQuarantinedWithinAuditWindow(t *testing.T) {
	want := groundTruth(t)

	honest := startBackends(t, 2, simserver.Config{})
	liar := startBackends(t, 1, simserver.Config{
		Run: func(ctx context.Context, cfg core.Config) (core.Result, error) {
			res, err := simrun.Run(ctx, cfg)
			if err == nil {
				res.AggregateIPC *= 1.5 // deterministic, self-consistent lie
			}
			return res, err
		},
	})

	c := chaosClient(t, append(honest, liar...), chaos.NewTransport(chaos.TransportConfig{Seed: 21}),
		func(cfg *fleet.Config) {
			cfg.AuditRate = 1
			cfg.AuditSeed = 21
			cfg.QuarantineThreshold = 0 // default
		})

	o := chaosOptions()
	o.Workers = 4
	o.Executor = c.Executor()
	sweep, err := experiments.RunSweep(context.Background(), o, chaosThresholds, chaosHeuristics)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderSweep(sweep); got != want {
		t.Fatalf("sweep with byzantine backend diverges from honest run:\nwant:\n%s\ngot:\n%s", want, got)
	}
	if c.Quarantined() != 1 {
		t.Fatalf("Quarantined() = %d, want the byzantine backend caught within the audit window", c.Quarantined())
	}
	var metrics strings.Builder
	c.WriteMetrics(&metrics)
	if !strings.Contains(metrics.String(), "fleet_quarantined_total 1") {
		t.Fatalf("metrics missing quarantine evidence:\n%s", metrics.String())
	}
}

// TestTornCheckpointResumeCompletesSweep tears the checkpoint file
// mid-sweep (injected kill -9 on the append path), then resumes from
// the torn file: the resumed sweep must complete, reuse at least one
// checkpointed run, and render byte-identically.
func TestTornCheckpointResumeCompletesSweep(t *testing.T) {
	want := groundTruth(t)
	path := filepath.Join(t.TempDir(), "chaos.ckpt")

	// Phase 1: sweep with a writer that dies mid-append. The sweep
	// fail-fasts on the checkpoint error, like a crashed process.
	cp, err := runner.OpenWith(path, runner.CheckpointOptions{
		WrapWriter: func(w io.WriteCloser) io.WriteCloser {
			// Checkpoint lines run ~2KB each (a full core.Result); tear a
			// few records in, mid-line.
			return chaos.NewWriter(w, 8000)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	o := chaosOptions()
	o.Workers = 1 // serialize so records land until the tear
	o.Checkpoint = cp
	_, err = experiments.RunSweep(context.Background(), o, chaosThresholds, chaosHeuristics)
	if !errors.Is(err, chaos.ErrTorn) {
		t.Fatalf("sweep err = %v, want the injected torn write", err)
	}
	cp.Close()

	// Phase 2: resume from the torn file and finish.
	cp2, err := runner.Open(path, true)
	if err != nil {
		t.Fatalf("resume from torn checkpoint: %v", err)
	}
	defer cp2.Close()
	if cp2.Len() == 0 {
		t.Fatal("no records survived the tear; the test exercised nothing")
	}
	t.Logf("resume: %d records recovered, %d skipped", cp2.Len(), cp2.Skipped())
	or := chaosOptions()
	or.Workers = 4
	or.Checkpoint = cp2
	resumed, err := experiments.RunSweep(context.Background(), or, chaosThresholds, chaosHeuristics)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderSweep(resumed); got != want {
		t.Fatalf("resumed sweep diverges from clean run:\nwant:\n%s\ngot:\n%s", want, got)
	}

	// Phase 3: one more resume proves the file was never poisoned.
	cp3, err := runner.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer cp3.Close()
	if cp3.Skipped() != 0 {
		t.Fatalf("third open skipped %d lines: torn tail poisoned the file", cp3.Skipped())
	}
	if cp3.Len() == 0 {
		t.Fatal("third open recovered nothing")
	}
}
