package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// TransportConfig tunes a Transport. Rates are probabilities in [0, 1];
// at most one fault fires per request (drawn cumulatively in the order
// reset, latency, truncate, corrupt, 5xx). Zero values inject nothing.
type TransportConfig struct {
	// Seed drives every fault decision. The same seed replays the same
	// fault sequence; log it so a failure can be reproduced.
	Seed uint64

	ResetRate     float64
	LatencyRate   float64
	TruncateRate  float64
	CorruptRate   float64
	ServerErrRate float64

	// Latency is the spike injected by FaultLatency; <= 0 selects 25ms.
	Latency time.Duration
	// BurstLen is how many consecutive requests a Fault5xx trigger
	// poisons; <= 0 selects 3.
	BurstLen int
	// Inner is the wrapped transport; nil selects
	// http.DefaultTransport.
	Inner http.RoundTripper
	// Log, when non-nil, receives one line per injected fault.
	Log io.Writer
}

// Transport is a fault-injecting http.RoundTripper. It is safe for
// concurrent use, like the transport it wraps.
type Transport struct {
	cfg   TransportConfig
	calls atomic.Uint64
	burst atomic.Int64 // remaining synthesized 500s in the current burst
	stats counters
}

// NewTransport builds a fault-injecting transport with defaults
// applied.
func NewTransport(cfg TransportConfig) *Transport {
	if cfg.Latency <= 0 {
		cfg.Latency = 25 * time.Millisecond
	}
	if cfg.BurstLen <= 0 {
		cfg.BurstLen = 3
	}
	if cfg.Inner == nil {
		cfg.Inner = http.DefaultTransport
	}
	return &Transport{cfg: cfg}
}

// Seed reports the seed the transport draws faults from.
func (t *Transport) Seed() uint64 { return t.cfg.Seed }

// Injected reports how many faults of class f have fired.
func (t *Transport) Injected(f Fault) int64 { return t.stats.get(f) }

// InjectedTotal reports how many faults have fired across all classes.
func (t *Transport) InjectedTotal() int64 { return t.stats.total() }

// Summary renders the injected-fault tally, e.g. "reset=3 corrupt=7".
func (t *Transport) Summary() string {
	return fmt.Sprintf("chaos(seed=%d): %s", t.cfg.Seed, t.stats.String())
}

// errReset is the injected connection failure.
type errReset struct{ n uint64 }

func (e errReset) Error() string {
	return fmt.Sprintf("chaos: injected connection reset (event %d)", e.n)
}

// RoundTrip draws at most one fault for this request and applies it.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	// An active 5xx burst swallows requests regardless of the draw.
	for {
		left := t.burst.Load()
		if left <= 0 {
			break
		}
		if t.burst.CompareAndSwap(left, left-1) {
			t.stats.add(Fault5xx)
			t.logf("5xx (burst, %d left)", left-1)
			return synth500(req), nil
		}
	}

	n := t.calls.Add(1)
	u := eventRand(t.cfg.Seed, n).Float64()
	switch {
	case u < t.cfg.ResetRate:
		t.stats.add(FaultReset)
		t.logf("reset (event %d)", n)
		return nil, errReset{n}
	case u < t.cfg.ResetRate+t.cfg.LatencyRate:
		t.stats.add(FaultLatency)
		t.logf("latency %s (event %d)", t.cfg.Latency, n)
		select {
		case <-time.After(t.cfg.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.cfg.Inner.RoundTrip(req)
	case u < t.cfg.ResetRate+t.cfg.LatencyRate+t.cfg.TruncateRate:
		resp, err := t.cfg.Inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		t.stats.add(FaultTruncate)
		t.logf("truncate (event %d)", n)
		resp.Body = &truncatingBody{inner: resp.Body, allow: truncateAt(t.cfg.Seed, n)}
		return resp, nil
	case u < t.cfg.ResetRate+t.cfg.LatencyRate+t.cfg.TruncateRate+t.cfg.CorruptRate:
		resp, err := t.cfg.Inner.RoundTrip(req)
		if err != nil {
			return resp, err
		}
		t.stats.add(FaultCorrupt)
		t.logf("corrupt (event %d)", n)
		resp.Body = &corruptingBody{inner: resp.Body, seed: t.cfg.Seed, event: n}
		return resp, nil
	case u < t.cfg.ResetRate+t.cfg.LatencyRate+t.cfg.TruncateRate+t.cfg.CorruptRate+t.cfg.ServerErrRate:
		t.stats.add(Fault5xx)
		t.burst.Store(int64(t.cfg.BurstLen) - 1)
		t.logf("5xx (burst of %d starts, event %d)", t.cfg.BurstLen, n)
		return synth500(req), nil
	default:
		return t.cfg.Inner.RoundTrip(req)
	}
}

func (t *Transport) logf(format string, args ...any) {
	if t.cfg.Log != nil {
		fmt.Fprintf(t.cfg.Log, "chaos: "+format+"\n", args...)
	}
}

// synth500 fabricates an HTTP 500 without touching the network.
func synth500(req *http.Request) *http.Response {
	const body = "chaos: injected server error"
	return &http.Response{
		Status:        "500 Internal Server Error",
		StatusCode:    http.StatusInternalServerError,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"X-Chaos-Fault": []string{"5xx"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateAt picks how many body bytes event n lets through before the
// cut: between 1 and 512, so headers parse but the JSON payload is
// incomplete.
func truncateAt(seed, n uint64) int64 {
	return 1 + eventRand(seed, n<<16|1).Int64N(512)
}

// truncatingBody lets allow bytes through and then reports an
// unexpected EOF, like a connection dropped mid-transfer.
type truncatingBody struct {
	inner io.ReadCloser
	allow int64
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if b.allow <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.allow {
		p = p[:b.allow]
	}
	n, err := b.inner.Read(p)
	b.allow -= int64(n)
	if err == nil && b.allow <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatingBody) Close() error { return b.inner.Close() }

// corruptingBody flips one bit in roughly every 64 bytes of the stream,
// deterministically from (seed, event). Corruption may land inside JSON
// syntax (a decode error) or inside a value (a digest mismatch); both
// must be survivable.
type corruptingBody struct {
	inner io.ReadCloser
	seed  uint64
	event uint64
	off   uint64 // stream offset, to keep flips deterministic per chunk
}

func (b *corruptingBody) Read(p []byte) (int, error) {
	n, err := b.inner.Read(p)
	for i := 0; i < n; i++ {
		pos := b.off + uint64(i)
		if pos%64 == 0 {
			r := eventRand(b.seed, b.event<<20|pos)
			p[i] ^= byte(1 << r.IntN(8))
		}
	}
	b.off += uint64(n)
	return n, err
}

func (b *corruptingBody) Close() error { return b.inner.Close() }
