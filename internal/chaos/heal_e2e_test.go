//go:build chaos

package chaos_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/resultstore"
	"repro/internal/simrun"
	"repro/internal/simserver"
)

// healDaemon is one disk-backed smtsimd instance plus its self-healing
// machinery, wired the way cmd/smtsimd wires them.
type healDaemon struct {
	store *resultstore.Tiered
	disk  *resultstore.Disk
	dir   string
	url   string
	scrub *resultstore.Scrubber
	repl  *resultstore.Replicator
}

// TestFleetHealsRottedAndFullStores is the self-healing acceptance
// test: a 3-daemon fleet computes a sweep once; then one daemon's disk
// bit-rots and another's fills (ENOSPC). Anti-entropy replication plus
// scrubbing must converge the fleet back to full health, and a repeated
// sweep must render byte-identical to the fault-free run with ZERO
// recomputation — every result is served from a store, none re-earned.
func TestFleetHealsRottedAndFullStores(t *testing.T) {
	want := groundTruth(t)
	ctx := context.Background()

	var runs atomic.Int64
	countingRun := func(ctx context.Context, cfg core.Config) (core.Result, error) {
		runs.Add(1)
		return simrun.Run(ctx, cfg)
	}

	// 512 bytes of disk: the full daemon's very first entry write trips
	// the tier to readonly, like a store landing on a full partition.
	full := chaos.NewDiskFull(512)

	mkDaemon := func(wrap func(io.WriteCloser) io.WriteCloser) *healDaemon {
		dir := t.TempDir()
		disk, err := resultstore.OpenDisk(dir, resultstore.DiskOptions{WrapWriter: wrap})
		if err != nil {
			t.Fatal(err)
		}
		store := resultstore.NewTiered(resultstore.NewMemory(1024), disk, nil)
		srv := simserver.New(simserver.Config{Workers: 2, Store: store, Run: countingRun})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() { ts.Close(); store.Close() })
		return &healDaemon{store: store, disk: disk, dir: dir, url: ts.URL}
	}

	healthy := mkDaemon(nil)
	rotted := mkDaemon(nil)
	filled := mkDaemon(full.Wrap)
	daemons := []*healDaemon{healthy, rotted, filled}

	// Self-healing wiring: each daemon replicates with the other two
	// (factor 3 = every daemon holds every result) and scrubs with the
	// fleet as its repair source. SyncOnce/ScrubOnce are driven by hand
	// for deterministic convergence instead of waiting on tickers.
	for i, d := range daemons {
		var others []string
		for j, o := range daemons {
			if j != i {
				others = append(others, o.url)
			}
		}
		src, err := fleet.NewPeerLookup(others, 500*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		d.scrub = resultstore.NewScrubber(d.store, resultstore.ScrubConfig{Pace: -1, Source: src})
		d.repl = resultstore.NewReplicator(d.store, resultstore.ReplicateConfig{Peers: others, Replicas: 3, Pace: -1})
	}

	urls := []string{healthy.url, rotted.url, filled.url}
	runSweep := func() string {
		c := chaosClient(t, urls, nil, func(cfg *fleet.Config) {
			cfg.HTTPClient = nil // real transport; the faults are on disk
			cfg.BatchSize = 4
		})
		o := chaosOptions()
		o.Workers = 4
		o.Executor = c.BatchExecutor()
		sweep, err := experiments.RunSweep(context.Background(), o, chaosThresholds, chaosHeuristics)
		if err != nil {
			t.Fatal(err)
		}
		return renderSweep(sweep)
	}

	// Warm sweep: results land partitioned across the fleet. The filled
	// daemon trips readonly on its first persist and keeps its share in
	// RAM only.
	if got := runSweep(); got != want {
		t.Fatalf("warm sweep diverges from local run\nwant:\n%s\ngot:\n%s", want, got)
	}
	if full.Fired() == 0 {
		t.Fatal("the disk-full injector never fired — the degraded path was not exercised")
	}
	if filled.disk.State() != resultstore.DiskReadOnly {
		t.Fatalf("filled daemon's disk state = %v, want readonly", filled.disk.State())
	}

	// The degraded daemon must report itself: /healthz carries
	// store_state so fleet probes weight dispatch away from it.
	var h struct {
		StoreState string `json:"store_state"`
	}
	resp, err := http.Get(filled.url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.StoreState != resultstore.StateReadOnly {
		t.Fatalf("degraded daemon /healthz store_state = %q, want readonly", h.StoreState)
	}

	// Anti-entropy round: every daemon pulls every key it is missing
	// (the readonly daemon's pulls land in RAM; its manifest advertises
	// them anyway, so nothing is stranded).
	var pulled int
	for _, d := range daemons {
		rep := d.repl.SyncOnce(ctx)
		pulled += rep.Pulled
		if rep.PullErrors != 0 || rep.PeerErrors != 0 {
			t.Fatalf("replication round reported errors: %+v", rep)
		}
	}
	if pulled == 0 {
		t.Fatal("replication moved nothing — the sweep was not partitioned, nothing was tested")
	}

	// Bit-rot three of the rotted daemon's entry files and evict the
	// same keys from its RAM, so serving them genuinely requires the
	// scrub-quarantine-repair path.
	names, err := filepath.Glob(filepath.Join(rotted.dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	var rotKeys []string
	for _, path := range names {
		base := filepath.Base(path)
		if base == "index.json" || len(rotKeys) == 3 {
			continue
		}
		if _, _, err := chaos.RotFile(path, uint64(42+len(rotKeys))); err != nil {
			t.Fatal(err)
		}
		key := strings.Replace(strings.TrimSuffix(base, ".json"), "-", ":", 1)
		rotKeys = append(rotKeys, key)
		rotted.store.Memory().Remove(key)
	}
	if len(rotKeys) != 3 {
		t.Fatalf("rotted %d entry files, want 3 (store holds %d files)", len(rotKeys), len(names))
	}

	// Scrub detects every flipped bit, quarantines the file, and heals
	// it from a peer — the store converges without losing a single key.
	srep := rotted.scrub.ScrubOnce(ctx)
	if srep.Corrupt != 3 || srep.Repaired != 3 || srep.RepairFailed != 0 {
		t.Fatalf("scrub pass = %+v, want 3 corrupt, 3 repaired", srep)
	}
	if q := rotted.disk.Quarantines(); q != 3 {
		t.Fatalf("Quarantines = %d, want 3", q)
	}
	for _, key := range rotKeys {
		if _, ok := rotted.disk.Get(key); !ok {
			t.Fatalf("repaired key %s does not serve from disk", key)
		}
	}

	// The operator frees the full disk; the next scrub pass re-arms the
	// tier eagerly (no waiting on the lazy recovery interval).
	full.Refill(1 << 20)
	frep := filled.scrub.ScrubOnce(ctx)
	if !frep.Recovered {
		t.Fatal("scrub did not re-arm the refilled disk")
	}
	if filled.disk.State() != resultstore.DiskOK {
		t.Fatalf("refilled daemon's disk state = %v, want ok", filled.disk.State())
	}

	// Converged fleet: the repeated sweep is byte-identical and costs
	// zero simulations — every result is served from a store.
	before := runs.Load()
	if got := runSweep(); got != want {
		t.Fatalf("post-heal sweep diverges from local run\nwant:\n%s\ngot:\n%s", want, got)
	}
	if after := runs.Load(); after != before {
		t.Fatalf("post-heal sweep recomputed %d results, want 0", after-before)
	}
}
