package counters

import (
	"testing"
	"testing/quick"
)

func TestAddSubRoundtrip(t *testing.T) {
	f := func(a, b Counters) bool {
		sum := a
		sum.Add(b)
		return sum.Sub(a) == b && sum.Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubSelfIsZero(t *testing.T) {
	f := func(a Counters) bool {
		return a.Sub(a) == (Counters{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedCounts(t *testing.T) {
	c := Counters{L1IMisses: 3, L1DMisses: 7, Loads: 11, Stores: 5}
	if c.L1Misses() != 10 {
		t.Fatalf("L1Misses = %d", c.L1Misses())
	}
	if c.MemOps() != 16 {
		t.Fatalf("MemOps = %d", c.MemOps())
	}
}

func TestGaugesMissOut(t *testing.T) {
	g := Gauges{DMissOut: 2, IMissOut: 1}
	if g.MissOut() != 3 {
		t.Fatalf("MissOut = %d", g.MissOut())
	}
}

func TestTotalInFlight(t *testing.T) {
	// 5 in the fetch buffer (PreIssue counts IFQ + IQ; IQ is 3 of them),
	// 10 in the ROB: in flight = IFQ (2) + ROB (10).
	s := State{Live: Gauges{PreIssue: 5, IQ: 3, ROB: 10}}
	if got := s.TotalInFlight(); got != 12 {
		t.Fatalf("TotalInFlight = %d, want 12", got)
	}
}
