// Package counters defines the per-thread status indicators and thread
// control flags of the ADTS hardware/software interface (paper §3,
// Figure 1).
//
// The pipeline updates the indicators "at predetermined events in places
// spread across the pipeline"; the detector thread reads them each
// scheduling quantum and updates the control flags; the thread selection
// unit and fetch stage honour the flags every cycle. Fetch policies read
// the live occupancy gauges every cycle.
package counters

// Counters accumulates per-thread event counts. The same struct is used
// cumulatively (whole run) and as per-quantum deltas.
type Counters struct {
	Fetched      uint64 // instructions fetched (right or wrong path)
	WrongFetched uint64 // wrong-path instructions fetched
	Committed    uint64 // instructions committed
	Branches     uint64 // control instructions committed (cond + uncond)
	CondBranches uint64 // conditional branches committed
	Mispredicts  uint64 // mispredicted conditional branches resolved
	Loads        uint64 // loads committed
	Stores       uint64 // stores committed
	L1IMisses    uint64 // instruction-cache misses
	L1DMisses    uint64 // data-cache misses
	LSQFull      uint64 // cycles a rename was blocked by a full LSQ
	MSHRFull     uint64 // load issues rejected because all MSHRs were busy
	FetchStalls  uint64 // cycles this thread could not fetch (I-miss, flags, squash)
	Syscalls     uint64 // syscall drains initiated
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Fetched += o.Fetched
	c.WrongFetched += o.WrongFetched
	c.Committed += o.Committed
	c.Branches += o.Branches
	c.CondBranches += o.CondBranches
	c.Mispredicts += o.Mispredicts
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.L1IMisses += o.L1IMisses
	c.L1DMisses += o.L1DMisses
	c.LSQFull += o.LSQFull
	c.MSHRFull += o.MSHRFull
	c.FetchStalls += o.FetchStalls
	c.Syscalls += o.Syscalls
}

// Sub returns c - o, the delta between two cumulative snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Fetched:      c.Fetched - o.Fetched,
		WrongFetched: c.WrongFetched - o.WrongFetched,
		Committed:    c.Committed - o.Committed,
		Branches:     c.Branches - o.Branches,
		CondBranches: c.CondBranches - o.CondBranches,
		Mispredicts:  c.Mispredicts - o.Mispredicts,
		Loads:        c.Loads - o.Loads,
		Stores:       c.Stores - o.Stores,
		L1IMisses:    c.L1IMisses - o.L1IMisses,
		L1DMisses:    c.L1DMisses - o.L1DMisses,
		LSQFull:      c.LSQFull - o.LSQFull,
		MSHRFull:     c.MSHRFull - o.MSHRFull,
		FetchStalls:  c.FetchStalls - o.FetchStalls,
		Syscalls:     c.Syscalls - o.Syscalls,
	}
}

// L1Misses returns combined instruction- and data-cache misses, the
// quantity the L1MISSCOUNT policy and COND_MEM threshold use.
func (c Counters) L1Misses() uint64 { return c.L1IMisses + c.L1DMisses }

// MemOps returns loads + stores.
func (c Counters) MemOps() uint64 { return c.Loads + c.Stores }

// Gauges are live occupancy indicators, kept exact by the pipeline as
// instructions move between stages. Fetch policies prioritise on them.
type Gauges struct {
	PreIssue int // instructions in fetch buffer + instruction queues (ICOUNT's count)
	IQ       int // instructions waiting in the INT+FP instruction queues
	Branches int // unresolved control instructions in flight
	Loads    int // loads in flight (issued or waiting)
	Mem      int // loads + stores in flight
	DMissOut int // outstanding L1D misses
	IMissOut int // outstanding L1I miss (0/1: fetch blocks on it)
	Stalled  int // consecutive cycles the oldest ROB entry has not committed
	ROB      int // occupied reorder-buffer entries
	LSQ      int // occupied load/store-queue entries owned by this thread
}

// MissOut returns combined outstanding L1 misses (L1MISSCOUNT's count).
func (g Gauges) MissOut() int { return g.DMissOut + g.IMissOut }

// Flags are the per-thread control flags the detector thread writes and
// the thread selection unit honours (paper §3: "A flag may tell whether a
// thread can be fetched in the next cycle while another flag may tell
// whether it should be context-switched in the next opportunity").
type Flags struct {
	// FetchDisabled excludes the thread from fetch-slot arbitration.
	FetchDisabled bool
	// Clogging marks the thread for the job scheduler as pipeline-
	// clogging, so a loaded system thread "can suspend a clogging thread
	// without going through the process of determining which thread to
	// suspend" (§4).
	Clogging bool
}

// State is the full per-thread view a fetch policy or the detector thread
// sees: cumulative counters, the running quantum's counters, live gauges,
// control flags, and accumulated IPC.
type State struct {
	Cum     Counters
	Quantum Counters
	Live    Gauges
	Flags   Flags
	// AccIPC is the thread's accumulated committed IPC over the run so
	// far (the ACCIPC policy's key).
	AccIPC float64
	// QuantumStalls counts cycles in the current quantum in which the
	// thread had instructions in flight but committed nothing
	// (STALLCOUNT's key).
	QuantumStalls uint64
}

// TotalInFlight returns the number of instructions the thread currently
// holds anywhere in the pipeline, a sanity quantity used by invariant
// tests and clog detection.
func (s *State) TotalInFlight() int { return s.Live.ROB + s.Live.PreIssue - s.Live.IQ }
