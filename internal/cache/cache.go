// Package cache implements the memory-hierarchy substrate: set-associative
// LRU caches composed into an L1I/L1D/unified-L2/DRAM hierarchy, with
// per-thread hit/miss accounting.
//
// The timing contract is simple and synchronous: Access returns the total
// latency of the access, having recursively charged any lower levels. The
// pipeline schedules instruction completion that many cycles in the
// future; overlap between outstanding misses is modelled by the pipeline
// (multiple loads may be in flight at once), not by the cache.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name      string // for diagnostics: "L1I", "L1D", "L2"
	Sets      int    // number of sets; power of two
	Ways      int    // associativity
	BlockBits uint   // log2(block size in bytes)
	HitLat    int    // access latency in cycles on a hit
}

// Size returns the capacity in bytes.
func (c Config) Size() int { return c.Sets * c.Ways << c.BlockBits }

func (c Config) validate() {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: sets must be a positive power of two", c.Name))
	}
	if c.Ways <= 0 {
		panic(fmt.Sprintf("cache %s: ways must be positive", c.Name))
	}
	if c.HitLat < 0 {
		panic(fmt.Sprintf("cache %s: negative hit latency", c.Name))
	}
}

// Level is anything an upper cache can miss into.
type Level interface {
	// Access performs an access on behalf of thread tid and returns its
	// latency in cycles and whether this level missed.
	Access(tid int, addr uint64, write bool) (lat int, miss bool)
	// CloneLevel returns an independent deep copy.
	CloneLevel() Level
}

// Memory is the DRAM terminus of the hierarchy: fixed latency, always hits.
type Memory struct {
	Lat      int
	Accesses uint64
}

// Access implements Level.
func (m *Memory) Access(int, uint64, bool) (int, bool) {
	m.Accesses++
	return m.Lat, false
}

// CloneLevel implements Level.
func (m *Memory) CloneLevel() Level {
	cp := *m
	return &cp
}

// Stats holds per-thread access counts for one cache.
type Stats struct {
	Hits   uint64
	Misses uint64
}

// MissRate returns misses / (hits+misses), or 0 for no accesses.
func (s Stats) MissRate() float64 {
	t := s.Hits + s.Misses
	if t == 0 {
		return 0
	}
	return float64(s.Misses) / float64(t)
}

// Cache is one set-associative, LRU, write-allocate cache level.
type Cache struct {
	cfg   Config
	tags  []uint64 // sets*ways; 0 = invalid (tags are stored |1)
	lru   []uint8
	next  Level
	stats []Stats // indexed by thread id
}

// New builds a cache over the given next level with per-thread statistics
// for threads hardware contexts.
func New(cfg Config, next Level, threads int) *Cache {
	cfg.validate()
	n := cfg.Sets * cfg.Ways
	return &Cache{
		cfg:   cfg,
		tags:  make([]uint64, n),
		lru:   make([]uint8, n),
		next:  next,
		stats: make([]Stats, threads),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated per-thread statistics for tid.
func (c *Cache) Stats(tid int) Stats { return c.stats[tid] }

// TotalStats returns statistics summed over all threads.
func (c *Cache) TotalStats() Stats {
	var t Stats
	for _, s := range c.stats {
		t.Hits += s.Hits
		t.Misses += s.Misses
	}
	return t
}

func (c *Cache) index(addr uint64) (base int, key uint64) {
	block := addr >> c.cfg.BlockBits
	set := int(block) & (c.cfg.Sets - 1)
	return set * c.cfg.Ways, block | (1 << 63) // key never 0
}

// Access performs a read or write. It returns the total latency and
// whether this level missed. Misses are charged the next level's latency
// and fill the block (write-allocate for writes).
func (c *Cache) Access(tid int, addr uint64, write bool) (lat int, miss bool) {
	base, key := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == key {
			c.touch(base, w)
			c.stats[tid].Hits++
			return c.cfg.HitLat, false
		}
	}
	c.stats[tid].Misses++
	lat = c.cfg.HitLat
	if c.next != nil {
		nlat, _ := c.next.Access(tid, addr, write)
		lat += nlat
	}
	// Fill: replace the LRU way.
	victim := 0
	for w := 1; w < c.cfg.Ways; w++ {
		if c.lru[base+w] < c.lru[base+victim] {
			victim = w
		}
	}
	c.tags[base+victim] = key
	c.touch(base, victim)
	return lat, true
}

// Probe reports whether addr currently hits, without updating LRU state
// or statistics. Tests use it to inspect cache contents.
func (c *Cache) Probe(addr uint64) bool {
	base, key := c.index(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.tags[base+w] == key {
			return true
		}
	}
	return false
}

func (c *Cache) touch(base, w int) {
	if c.lru[base+w] == 255 {
		for i := 0; i < c.cfg.Ways; i++ {
			c.lru[base+i] /= 2
		}
	}
	max := uint8(0)
	for i := 0; i < c.cfg.Ways; i++ {
		if c.lru[base+i] > max {
			max = c.lru[base+i]
		}
	}
	c.lru[base+w] = max + 1
}

// Clone returns a deep copy of this cache over the given cloned next
// level. Callers cloning a hierarchy must clone shared lower levels once
// and pass the same clone to each upper-level Clone.
func (c *Cache) Clone(next Level) *Cache {
	nc := &Cache{
		cfg:   c.cfg,
		tags:  make([]uint64, len(c.tags)),
		lru:   make([]uint8, len(c.lru)),
		next:  next,
		stats: make([]Stats, len(c.stats)),
	}
	copy(nc.tags, c.tags)
	copy(nc.lru, c.lru)
	copy(nc.stats, c.stats)
	return nc
}

// CloneLevel implements Level by cloning this cache and, recursively, its
// next level. Only use on caches that are not shared by other parents.
func (c *Cache) CloneLevel() Level {
	var next Level
	if c.next != nil {
		next = c.next.CloneLevel()
	}
	return c.Clone(next)
}

// Hierarchy is the standard three-level configuration used by the
// simulator: split L1s over a shared unified L2 over DRAM.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	Mem *Memory
}

// HierarchyConfig collects the geometry of a full hierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	MemLat       int
}

// DefaultHierarchyConfig mirrors the machine the paper configures: 32 KB
// 4-way split L1s with 64-byte blocks, a 1 MB 8-way unified L2, and
// ~100-cycle DRAM.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1I:    Config{Name: "L1I", Sets: 128, Ways: 4, BlockBits: 6, HitLat: 1},
		L1D:    Config{Name: "L1D", Sets: 128, Ways: 4, BlockBits: 6, HitLat: 1},
		L2:     Config{Name: "L2", Sets: 1024, Ways: 8, BlockBits: 6, HitLat: 10},
		MemLat: 80,
	}
}

// NewHierarchy builds the standard hierarchy for threads contexts.
func NewHierarchy(cfg HierarchyConfig, threads int) *Hierarchy {
	mem := &Memory{Lat: cfg.MemLat}
	l2 := New(cfg.L2, mem, threads)
	return &Hierarchy{
		L1I: New(cfg.L1I, l2, threads),
		L1D: New(cfg.L1D, l2, threads),
		L2:  l2,
		Mem: mem,
	}
}

// Clone deep-copies the hierarchy, preserving the sharing structure
// (both L1 clones point at the same L2 clone).
func (h *Hierarchy) Clone() *Hierarchy {
	mem := h.Mem.CloneLevel().(*Memory)
	l2 := h.L2.Clone(mem)
	return &Hierarchy{
		L1I: h.L1I.Clone(l2),
		L1D: h.L1D.Clone(l2),
		L2:  l2,
		Mem: mem,
	}
}
