package cache

// This file provides in-place reuse for caches and hierarchies: Reset
// restores the just-constructed (all-invalid) state and CopyFrom
// overwrites contents with another instance's, both without allocating.
// The pipeline uses them for machine pooling (Machine.Reset) and the
// oracle's scratch-clone path (Machine.CloneInto).

// Reset invalidates every block and zeroes all statistics. It does not
// touch the next level; callers resetting a hierarchy reset each level.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.lru[i] = 0
	}
	for i := range c.stats {
		c.stats[i] = Stats{}
	}
}

// CopyFrom overwrites c's contents and statistics with src's. The next
// level is untouched (sharing structure is the caller's to manage).
// Geometries must match.
func (c *Cache) CopyFrom(src *Cache) {
	if c.cfg.Sets != src.cfg.Sets || c.cfg.Ways != src.cfg.Ways || len(c.stats) != len(src.stats) {
		panic("cache: CopyFrom geometry mismatch")
	}
	copy(c.tags, src.tags)
	copy(c.lru, src.lru)
	copy(c.stats, src.stats)
}

// Reset restores every level of the hierarchy to its just-built state.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L1D.Reset()
	h.L2.Reset()
	h.Mem.Accesses = 0
}

// CopyFrom overwrites h's state with src's, level by level. The sharing
// structure (both L1s over h's own L2) is preserved; only contents move.
func (h *Hierarchy) CopyFrom(src *Hierarchy) {
	h.L1I.CopyFrom(src.L1I)
	h.L1D.CopyFrom(src.L1D)
	h.L2.CopyFrom(src.L2)
	h.Mem.Lat = src.Mem.Lat
	h.Mem.Accesses = src.Mem.Accesses
}
