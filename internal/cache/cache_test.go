package cache

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{Name: "T", Sets: 4, Ways: 2, BlockBits: 6, HitLat: 1}
}

func TestMissThenHit(t *testing.T) {
	c := New(small(), &Memory{Lat: 50}, 1)
	lat, miss := c.Access(0, 0x1000, false)
	if !miss || lat != 51 {
		t.Fatalf("cold access = (%d, %t), want (51, true)", lat, miss)
	}
	lat, miss = c.Access(0, 0x1000, false)
	if miss || lat != 1 {
		t.Fatalf("warm access = (%d, %t), want (1, false)", lat, miss)
	}
	// Same block, different offset: still a hit.
	if _, miss = c.Access(0, 0x103F, false); miss {
		t.Fatal("same-block access missed")
	}
	// Next block: miss.
	if _, miss = c.Access(0, 0x1040, false); !miss {
		t.Fatal("next-block access hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(small(), &Memory{Lat: 10}, 1)
	// Three blocks mapping to the same set (set index = block % 4).
	a := uint64(0 << 6) // set 0
	b := uint64(4 << 6) // set 0
	d := uint64(8 << 6) // set 0
	c.Access(0, a, false)
	c.Access(0, b, false)
	c.Access(0, a, false) // a is MRU, b is LRU
	c.Access(0, d, false) // evicts b
	if !c.Probe(a) {
		t.Fatal("MRU block evicted")
	}
	if c.Probe(b) {
		t.Fatal("LRU block survived")
	}
	if !c.Probe(d) {
		t.Fatal("new block not resident")
	}
}

func TestPerThreadStats(t *testing.T) {
	c := New(small(), &Memory{Lat: 10}, 2)
	c.Access(0, 0, false) // miss
	c.Access(0, 0, false) // hit
	c.Access(1, 0, false) // hit (shared cache)
	s0, s1 := c.Stats(0), c.Stats(1)
	if s0.Misses != 1 || s0.Hits != 1 {
		t.Fatalf("thread 0 stats %+v", s0)
	}
	if s1.Misses != 0 || s1.Hits != 1 {
		t.Fatalf("thread 1 stats %+v", s1)
	}
	tot := c.TotalStats()
	if tot.Hits != 2 || tot.Misses != 1 {
		t.Fatalf("total stats %+v", tot)
	}
	if got := tot.MissRate(); got < 0.33 || got > 0.34 {
		t.Fatalf("miss rate %.3f", got)
	}
	if (Stats{}).MissRate() != 0 {
		t.Fatal("empty miss rate should be 0")
	}
}

func TestSequentialStreamMissRate(t *testing.T) {
	// An 8-byte-stride streaming scan over a footprint much larger than
	// the cache must miss exactly once per 64-byte block: 1/8 of refs.
	cfg := Config{Name: "L1", Sets: 64, Ways: 4, BlockBits: 6, HitLat: 1}
	c := New(cfg, &Memory{Lat: 10}, 1)
	const n = 64 * 1024
	for i := 0; i < n; i++ {
		c.Access(0, uint64(i)*8, false)
	}
	rate := c.Stats(0).MissRate()
	if rate < 0.12 || rate > 0.13 {
		t.Fatalf("streaming miss rate %.4f, want 0.125", rate)
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	// A working set smaller than capacity must stop missing once warm.
	cfg := Config{Name: "L1", Sets: 64, Ways: 4, BlockBits: 6, HitLat: 1} // 16KB
	c := New(cfg, &Memory{Lat: 10}, 1)
	warm := func() {
		for a := uint64(0); a < 8*1024; a += 64 {
			c.Access(0, a, false)
		}
	}
	warm()
	before := c.Stats(0).Misses
	warm()
	warm()
	if c.Stats(0).Misses != before {
		t.Fatalf("resident working set still missing: %d -> %d", before, c.Stats(0).Misses)
	}
}

func TestHierarchySharedL2(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig(), 2)
	addr := uint64(0x40000)
	// First I-side access fills L2.
	lat1, _ := h.L1I.Access(0, addr, false)
	// D-side access to the same line misses L1D but hits the shared L2.
	lat2, miss := h.L1D.Access(0, addr, false)
	if !miss {
		t.Fatal("L1D should miss on first access")
	}
	if lat2 >= lat1 {
		t.Fatalf("expected L2 hit (%d) to be cheaper than DRAM fill (%d)", lat2, lat1)
	}
	if h.Mem.Accesses != 1 {
		t.Fatalf("DRAM accessed %d times, want 1 (shared L2)", h.Mem.Accesses)
	}
}

func TestHierarchyClone(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig(), 1)
	h.L1D.Access(0, 0x100, false)
	c := h.Clone()
	// Mutating the clone must not touch the original.
	c.L1D.Access(0, 0x9900000, false)
	if h.L1D.Probe(0x9900000) {
		t.Fatal("clone access leaked into original L1D")
	}
	if h.L2.Probe(0x9900000) {
		t.Fatal("clone access leaked into original L2")
	}
	// Clone must preserve contents and sharing: an L1I access to a line
	// the clone's L1D loaded must hit the clone's L2.
	before := c.Mem.Accesses
	c.L1I.Access(0, 0x9900000, false)
	if c.Mem.Accesses != before {
		t.Fatal("clone L2 not shared between L1I and L1D")
	}
}

func TestConfigValidatePanics(t *testing.T) {
	bad := []Config{
		{Sets: 0, Ways: 1, HitLat: 1},
		{Sets: 3, Ways: 1, HitLat: 1},
		{Sets: 4, Ways: 0, HitLat: 1},
		{Sets: 4, Ways: 1, HitLat: -1},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, nil, 1)
		}()
	}
}

func TestConfigSize(t *testing.T) {
	cfg := Config{Sets: 128, Ways: 4, BlockBits: 6, HitLat: 1}
	if cfg.Size() != 32*1024 {
		t.Fatalf("Size = %d, want 32KB", cfg.Size())
	}
}

// TestProbeAfterAccess: any accessed address is resident immediately
// after (write-allocate on both reads and writes).
func TestProbeAfterAccess(t *testing.T) {
	c := New(Config{Name: "T", Sets: 128, Ways: 4, BlockBits: 6, HitLat: 1}, &Memory{Lat: 5}, 1)
	f := func(addr uint64, write bool) bool {
		c.Access(0, addr, write)
		return c.Probe(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCounts(t *testing.T) {
	m := &Memory{Lat: 42}
	lat, miss := m.Access(0, 1, true)
	if lat != 42 || miss {
		t.Fatalf("memory access = (%d, %t)", lat, miss)
	}
	c := m.CloneLevel().(*Memory)
	c.Access(0, 2, false)
	if m.Accesses != 1 || c.Accesses != 2 {
		t.Fatalf("accesses: orig %d clone %d", m.Accesses, c.Accesses)
	}
}
