// Package repro is a from-scratch Go reproduction of "Dynamic Scheduling
// Issues in SMT Architectures" (Shin, Lee, Gaudiot; IPPS 2003): Adaptive
// Dynamic Thread Scheduling (ADTS) with a detector thread on a
// simultaneous-multithreading processor.
//
// The repository contains the complete system the paper's evaluation
// needs, built from scratch on the standard library only:
//
//   - internal/pipeline — a trace-driven, cycle-level SMT out-of-order
//     core (ICOUNT.2.8 fetch, shared queues and rename pools, per-thread
//     ROBs, wrong-path execution, syscall drains, a detector-thread cost
//     model);
//   - internal/trace — a deterministic synthetic workload substrate
//     modelling sixteen SPEC CPU2000 applications and the paper's
//     thirteen multiprogrammed mixes;
//   - internal/branch, internal/cache — the predictor and memory
//     hierarchy substrates;
//   - internal/policy — the ten fetch policies of Table 1;
//   - internal/detector — the ADTS detector thread (heuristics Type 1,
//     2, 3, 3' and 4, switching-history buffer, clog identification);
//   - internal/oracle — the clone-based per-quantum oracle upper bound;
//   - internal/core — the public simulation facade;
//   - internal/experiments — drivers regenerating every table and
//     figure of the paper's evaluation.
//
// See README.md for a guided tour, DESIGN.md for the system inventory
// and substitutions, and EXPERIMENTS.md for paper-versus-measured
// results. The benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=. -benchmem
package repro
